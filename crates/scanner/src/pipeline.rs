//! The end-to-end measurement pipeline: zmap-style sweep → probe stack →
//! streamed [`ScanRecord`]s.
//!
//! Records flow through a *bounded* channel ([`Scanner::scan_stream`]):
//! the producer blocks when the consumer lags, so memory stays O(channel
//! capacity) no matter how many of the 2³² addresses answer. For
//! synchronous use (tests, small universes) [`Scanner::scan_with`] drives
//! a callback on the caller's thread and [`Scanner::scan_collect`] gathers
//! everything into a `Vec`.
//!
//! ## Sharded scanning
//!
//! [`ScanConfig::workers`] shards the campaign across N threads: every
//! worker walks the *same* zmap permutation (the walk is a function of
//! the seed alone) but probes only the steps `pos % workers == shard`,
//! running its own probe stack. Records carry their global permutation
//! step, and the coordinator merges the N sorted shard streams back into
//! exact discovery order, so the output is **byte-identical for a fixed
//! seed regardless of worker count**.
//!
//! Two invariants make that determinism hold:
//!
//! 1. every host is probed on an independent clock *fork* anchored at
//!    the campaign epoch ([`netsim::VirtualClock::fork`] via
//!    [`Internet::with_clock`]), so record contents are a pure function
//!    of (host, seed, epoch) — never of probe order;
//! 2. campaign time is accounted once from summed, order-independent
//!    quantities: SYN pacing in microseconds from total probes sent
//!    (sweep plus referral follow-ups), plus the sum of per-host probe
//!    latencies.
//!
//! ## Referral following
//!
//! After the sweep, the pipeline follows FindServers referrals
//! (the paper's 2020-05-04 scanner change, which surfaced >1000 servers
//! hidden behind discovery servers on non-default ports): referred URLs
//! are normalized through [`crate::url::OpcUrl`], deduplicated against
//! everything the sweep already covered, checked against the blocklist,
//! and probed breadth-first level by level up to
//! [`ScanConfig::referral_depth`] /  [`ScanConfig::referral_budget`].
//! Referral records carry [`DiscoveredVia::Referral`] provenance and are
//! emitted after the sweep records, in deterministic queue order — so the
//! full output stream stays byte-identical per seed at any worker count.

use crate::probe::{Probe, ProbeContext, ProbeOutcome, ScanConfig, ScanEngine};
use crate::record::{DiscoveredVia, ScanRecord};
use crate::sched::{
    CancelToken, EngineRun, EngineStats, EventLoop, Job, PendingUrl, SweepCheckpoint,
};
use crate::suite::{OpcUaSuite, ProtocolSuite};
use crate::url::OpcUrl;
use netsim::{
    Blocklist, Cidr, Internet, Ipv4, SweepConfig, SweepStats, SweepWalk, SynScanner, VirtualClock,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
// ua-lint: allow(unordered-iteration) -- dedup membership only; checkpoint export sorts before emitting
use std::collections::HashSet;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use ua_crypto::{CertStore, CertStoreStats};

/// Accounting of the referral-following phase. Every announced URL ends
/// up in exactly one disposition bucket:
/// `unfollowable + already_probed + blocklisted + truncated + followed
/// == urls_announced`, and `followed == dead + opcua_hosts +
/// non_opcua_hosts`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReferralStats {
    /// Referral URLs announced across all records (after per-record
    /// normalization and dedup).
    pub urls_announced: u64,
    /// URLs that cannot be turned into a probe target: unparseable, or
    /// a DNS name the scanner cannot resolve.
    pub unfollowable: u64,
    /// Targets skipped because the sweep already covered them or an
    /// earlier referral probed them — includes every self-referral loop.
    pub already_probed: u64,
    /// Targets skipped because their address is blocklisted.
    pub blocklisted: u64,
    /// Fresh targets dropped by the depth or budget limits.
    pub truncated: u64,
    /// Referral probes actually sent.
    pub followed: u64,
    /// Followed targets with nothing listening (dead referrals).
    pub dead: u64,
    /// Followed targets that spoke OPC UA.
    pub opcua_hosts: u64,
    /// Followed targets that answered but did not speak OPC UA.
    pub non_opcua_hosts: u64,
    /// Deepest referral chain actually probed (0 when nothing was
    /// followed).
    pub max_depth: u32,
}

impl ReferralStats {
    /// Folds another phase's counters in. Multi-suite campaigns run one
    /// referral phase per referral-capable suite and sum them; depths
    /// take the max (the deepest chain any suite followed).
    pub fn absorb(&mut self, other: ReferralStats) {
        self.urls_announced += other.urls_announced;
        self.unfollowable += other.unfollowable;
        self.already_probed += other.already_probed;
        self.blocklisted += other.blocklisted;
        self.truncated += other.truncated;
        self.followed += other.followed;
        self.dead += other.dead;
        self.opcua_hosts += other.opcua_hosts;
        self.non_opcua_hosts += other.non_opcua_hosts;
        self.max_depth = self.max_depth.max(other.max_depth);
    }
}

/// Connect-phase fault accounting across a campaign: one
/// [`HostOutcome`](crate::record::HostOutcome) bucket increment per
/// emitted record, plus the retry layer's cost telemetry. Dead referral
/// targets (never connected) are counted by
/// [`ReferralStats::dead`], not here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Records whose connect phase delivered a stream.
    pub ok: u64,
    /// Records refused (RST) — live host, closed port.
    pub unreachable: u64,
    /// Records that exhausted the retry budget on SYN timeouts.
    pub timed_out: u64,
    /// Records that exhausted the retry budget on rate-limit drops.
    pub throttled: u64,
    /// Records classified as tarpitted (silent stall or budget-burning
    /// byte dribble).
    pub tarpitted: u64,
    /// Records that needed more than one connect attempt.
    pub retried_hosts: u64,
    /// Total connect attempts across all records.
    pub connect_attempts: u64,
    /// Total virtual microseconds spent in retry backoff.
    pub backoff_micros: u64,
}

impl FaultStats {
    /// Folds one emitted record into the tally.
    pub fn observe(&mut self, record: &ScanRecord) {
        match record.outcome {
            crate::record::HostOutcome::Ok => self.ok += 1,
            crate::record::HostOutcome::Unreachable => self.unreachable += 1,
            crate::record::HostOutcome::TimedOut => self.timed_out += 1,
            crate::record::HostOutcome::Throttled => self.throttled += 1,
            crate::record::HostOutcome::Tarpitted => self.tarpitted += 1,
        }
        if record.connect_attempts > 1 {
            self.retried_hosts += 1;
        }
        self.connect_attempts += u64::from(record.connect_attempts);
        self.backoff_micros += record.backoff_micros;
    }

    /// Records the connect phase could not recover (everything but
    /// `ok`).
    pub fn unrecovered(&self) -> u64 {
        self.unreachable + self.timed_out + self.throttled + self.tarpitted
    }
}

/// Aggregate accounting of one scan campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanSummary {
    /// Sweep-stage accounting (probes, blocklist hits, responsive).
    pub sweep: SweepStats,
    /// Referral-following accounting (the paper's Table 1 delta).
    pub referrals: ReferralStats,
    /// Hosts that completed the UACP handshake (actual OPC UA speakers),
    /// including referral-discovered ones.
    pub opcua_hosts: u64,
    /// Responsive hosts that did not speak OPC UA.
    pub non_opcua_hosts: u64,
    /// Certificate-interning counters: total certificate sightings
    /// across all endpoint snapshots versus distinct DER payloads — the
    /// reuse factor of §5.2, observable per campaign.
    pub certs: CertStoreStats,
    /// Virtual unix time the campaign started.
    pub started_unix: i64,
    /// Virtual unix time the campaign finished.
    pub finished_unix: i64,
    /// Connect-phase fault/retry accounting (all zeros except `ok` on a
    /// polite network).
    pub faults: FaultStats,
}

/// How [`Scanner::scan_resumable`] ended.
// A transient return value, produced once per scan and immediately
// destructured — the variant size gap costs nothing here.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum ScanOutcome {
    /// The scan ran to completion.
    Complete {
        /// Campaign summary, byte-identical to the threaded engine's.
        summary: ScanSummary,
        /// Event-loop scheduler telemetry for this call (timer counts,
        /// in-flight high-water mark). Not part of the summary because
        /// the summary must not depend on the engine.
        engine: EngineStats,
    },
    /// Cancellation was observed at a safe point. Pass the checkpoint
    /// back to [`Scanner::scan_resumable`] to continue; the stitched
    /// record stream is byte-identical to an uninterrupted run.
    Aborted {
        /// Where to pick the scan back up.
        checkpoint: Box<SweepCheckpoint>,
    },
}

/// One referral URL waiting to be classified: who announced it, what it
/// said, and at which chain depth it would be probed.
struct PendingReferral {
    from: Ipv4,
    url: String,
    depth: u32,
}

/// A classified, accepted referral probe target.
struct ReferralTarget {
    addr: Ipv4,
    port: u16,
    from: Ipv4,
    depth: u32,
}

/// The campaign driver.
#[derive(Clone)]
pub struct Scanner {
    internet: Internet,
    blocklist: Blocklist,
    config: ScanConfig,
}

impl Scanner {
    /// Creates a scanner over `internet` honoring `blocklist`.
    pub fn new(internet: Internet, blocklist: Blocklist, config: ScanConfig) -> Self {
        Scanner {
            internet,
            blocklist,
            config,
        }
    }

    /// The scan configuration.
    pub fn config(&self) -> &ScanConfig {
        &self.config
    }

    /// The simulated Internet under measurement (multi-campaign drivers
    /// use its clock to pin weekly epochs).
    pub fn internet(&self) -> &Internet {
        &self.internet
    }

    /// Probes a single `(address, port)` target with the given probe
    /// stack, returning the record. Exposed for targeted re-scans and
    /// tests. Runs on the shared clock; campaign scans instead fork a
    /// per-host clock (see [`Self::scan_with`]), and campaign referral
    /// probes additionally carry [`DiscoveredVia::Referral`] provenance.
    pub fn probe_host(
        &self,
        stack: &mut [Box<dyn Probe>],
        addr: netsim::Ipv4,
        port: u16,
        seed: u64,
    ) -> ScanRecord {
        // Standalone probes intern into a throwaway store; campaign
        // scans share one store across every probe (see scan_with).
        let certs = CertStore::new();
        let suite: Arc<dyn ProtocolSuite> = Arc::new(OpcUaSuite::new());
        probe_host_on(
            &self.internet,
            &self.config,
            &certs,
            &suite,
            stack,
            addr,
            port,
            DiscoveredVia::Sweep,
            seed,
        )
    }

    /// Probes a target on an independent clock forked from `epoch`,
    /// returning the record plus the virtual microseconds the probe
    /// consumed. Record contents depend only on (host, port, seed,
    /// epoch).
    #[allow(clippy::too_many_arguments)]
    fn probe_host_at_epoch(
        &self,
        epoch: &VirtualClock,
        certs: &CertStore,
        suite: &Arc<dyn ProtocolSuite>,
        stack: &mut [Box<dyn Probe>],
        addr: netsim::Ipv4,
        port: u16,
        via: DiscoveredVia,
        seed: u64,
    ) -> (ScanRecord, u64) {
        let clock = epoch.fork();
        let start = clock.now_micros();
        let internet = self.internet.with_clock(clock.clone());
        let record = probe_host_on(
            &internet,
            &self.config,
            certs,
            suite,
            stack,
            addr,
            port,
            via,
            seed,
        );
        (record, clock.now_micros().saturating_sub(start))
    }

    /// Runs the full campaign synchronously, handing each record to
    /// `sink` as soon as its host is fully probed — in discovery order,
    /// which is identical for every [`ScanConfig::workers`] setting.
    pub fn scan_with<F>(&self, universe: &[Cidr], seed: u64, sink: F) -> ScanSummary
    where
        F: FnMut(ScanRecord),
    {
        // One certificate interner per campaign, shared by all shards:
        // interned handles are pure functions of the DER bytes, so the
        // worker-count byte-identity guarantee survives interning.
        self.scan_with_certs(universe, seed, &CertStore::new(), sink)
    }

    /// [`Self::scan_with`] against a caller-owned certificate interner.
    /// Longitudinal drivers (see [`crate::Campaign`]) pass the same
    /// store to every weekly campaign: a certificate that survives the
    /// week is parsed, thumbprinted, and verified exactly once for the
    /// whole study, and `summary.certs` reports the *cumulative*
    /// sighting/distinct counters across campaigns.
    pub fn scan_with_certs<F>(
        &self,
        universe: &[Cidr],
        seed: u64,
        certs: &CertStore,
        mut sink: F,
    ) -> ScanSummary
    where
        F: FnMut(ScanRecord),
    {
        if self.config.engine == ScanEngine::EventLoop {
            // The event-loop engine is the resumable path run to
            // completion; a fresh token never cancels.
            return match self.scan_resumable(universe, seed, certs, None, &CancelToken::new(), sink)
            {
                ScanOutcome::Complete { summary, .. } => summary,
                ScanOutcome::Aborted { .. } => {
                    unreachable!("scan with a fresh CancelToken cannot abort")
                }
            };
        }
        let mut summary = ScanSummary {
            started_unix: self.internet.clock().now_unix_seconds(),
            ..ScanSummary::default()
        };
        // Every probed host gets a clock forked from this frozen epoch,
        // so records cannot observe each other through shared time.
        let epoch = self.internet.clock().fork();
        let workers = self.config.effective_workers();
        let mut probe_micros: u64 = 0;
        let mut opcua_hosts: u64 = 0;
        let mut non_opcua_hosts: u64 = 0;
        let mut fault_stats = FaultStats::default();
        let mut emit = |record: ScanRecord| {
            if record.speaks() {
                opcua_hosts += 1;
            } else {
                non_opcua_hosts += 1;
            }
            fault_stats.observe(&record);
            sink(record);
        };
        // One full phase (sweep, then referral following for suites that
        // have it) per registered suite, in ascending port order. Phases
        // are independent — per-phase frontier and dedup state — so a
        // mixed registry emits exactly the concatenation of the
        // single-suite runs.
        let mut sweep_total = SweepStats::default();
        let mut referral_total = ReferralStats::default();
        for (sweep_port, suite) in self.config.effective_suites() {
            let follows = suite.follows_referrals();
            // Referral URLs harvested from emitted records, in emission
            // order — the deterministic seed of the referral queue.
            let mut frontier: Vec<PendingReferral> = Vec::new();
            let phase_sweep = {
                let mut sweep_emit = |record: ScanRecord| {
                    if follows {
                        collect_referrals(suite.as_ref(), &record, &mut frontier);
                    }
                    emit(record);
                };
                if workers == 1 {
                    // Single shard runs inline: the sweep streams
                    // responsive addresses straight into the probe
                    // stack, no threads.
                    let syn = SynScanner::new(
                        &self.internet,
                        &self.blocklist,
                        self.sweep_config(sweep_port),
                    );
                    let mut rng = StdRng::seed_from_u64(seed);
                    let mut stack = suite.stack();
                    syn.sweep_shard(universe, &mut rng, 0, 1, |_pos, addr| {
                        let (record, micros) = self.probe_host_at_epoch(
                            &epoch,
                            certs,
                            &suite,
                            &mut stack,
                            addr,
                            sweep_port,
                            DiscoveredVia::Sweep,
                            seed ^ u64::from(addr.0),
                        );
                        probe_micros += micros;
                        sweep_emit(record);
                    })
                } else {
                    self.scan_sharded(
                        universe,
                        seed,
                        workers,
                        &epoch,
                        certs,
                        sweep_port,
                        &suite,
                        &mut probe_micros,
                        &mut sweep_emit,
                    )
                }
            };
            sweep_total = sweep_total + phase_sweep;
            if follows {
                referral_total.absorb(self.follow_referrals(
                    universe,
                    seed,
                    &epoch,
                    certs,
                    sweep_port,
                    &suite,
                    frontier,
                    &mut probe_micros,
                    &mut emit,
                ));
            }
        }
        summary.sweep = sweep_total;
        summary.referrals = referral_total;
        summary.opcua_hosts = opcua_hosts;
        summary.non_opcua_hosts = non_opcua_hosts;
        summary.faults = fault_stats;
        summary.certs = certs.stats();
        // Account campaign time once, from order-independent sums: SYN
        // pacing in micros — integer-second division would stall the
        // clock entirely for campaigns shorter than a second of probes —
        // plus aggregate probe latency.
        let paced_probes = summary.sweep.probes_sent + summary.referrals.followed;
        let pacing_micros =
            paced_probes.saturating_mul(1_000_000) / self.config.probes_per_second.max(1);
        self.internet.clock().advance_micros(pacing_micros);
        self.internet.clock().advance_micros(probe_micros);
        summary.finished_unix = self.internet.clock().now_unix_seconds();
        summary
    }

    /// Runs the campaign on the event-driven engine (see
    /// [`crate::sched`]) with cooperative cancellation and
    /// deterministic abort/resume. Always uses the event loop
    /// regardless of [`ScanConfig::engine`] — the threaded engine has
    /// no checkpointable safe points.
    ///
    /// * `resume: None` starts a fresh scan at the current campaign
    ///   clock instant; `Some(checkpoint)` continues an aborted one
    ///   (same scanner, same universe, same seed — asserted).
    /// * `cancel` is polled between timer firings during the sweep and
    ///   at referral-level boundaries. On cancellation the scan returns
    ///   [`ScanOutcome::Aborted`] *without* advancing the campaign
    ///   clock: in-flight probes are dropped fork-clocks and all, and
    ///   time is only accounted when a scan completes.
    /// * Records emitted before an abort are final. The concatenation
    ///   of the aborted run's records and the resumed run's records is
    ///   byte-identical to an uninterrupted run (and to the threaded
    ///   engine at any worker count).
    pub fn scan_resumable<F>(
        &self,
        universe: &[Cidr],
        seed: u64,
        certs: &CertStore,
        resume: Option<SweepCheckpoint>,
        cancel: &CancelToken,
        mut sink: F,
    ) -> ScanOutcome
    where
        F: FnMut(ScanRecord),
    {
        // Rebuild (or initialize) the scan state. Everything an abort
        // checkpointed is carried forward; a fresh scan starts from the
        // shared campaign clock like the threaded engine does.
        let mut sweep_done = false;
        let mut suite_cursor: usize = 0;
        let mut resume_filter: Option<ResumeFilter> = None;
        let mut carried_sweep = SweepStats::default();
        let mut opcua_hosts: u64 = 0;
        let mut non_opcua_hosts: u64 = 0;
        let mut probe_micros: u64 = 0;
        let mut frontier: Vec<PendingReferral> = Vec::new();
        let mut ref_stats = ReferralStats::default();
        let mut fault_stats = FaultStats::default();
        // ua-lint: allow(unordered-iteration) -- dedup membership; checkpoint_probed sorts before export
        let mut probed: HashSet<(u32, u16)> = HashSet::new();
        let (epoch, started_unix) = match resume {
            None => (
                self.internet.clock().fork(),
                self.internet.clock().now_unix_seconds(),
            ),
            Some(cp) => {
                assert_eq!(cp.seed, seed, "resume must use the checkpoint's seed");
                sweep_done = cp.sweep_done;
                suite_cursor = cp.suite_cursor;
                if !cp.sweep_done {
                    resume_filter = Some(ResumeFilter {
                        next_step: cp.next_step,
                        pending: cp.in_flight.iter().copied().collect(),
                    });
                }
                carried_sweep = cp.sweep_stats;
                opcua_hosts = cp.opcua_hosts;
                non_opcua_hosts = cp.non_opcua_hosts;
                probe_micros = cp.probe_micros;
                frontier = cp
                    .frontier
                    .into_iter()
                    .map(|p| PendingReferral {
                        from: p.from,
                        url: p.url,
                        depth: p.depth,
                    })
                    .collect();
                ref_stats = cp.referral_stats;
                fault_stats = cp.fault_stats;
                probed = cp
                    .probed_referrals
                    .iter()
                    .map(|&(addr, port)| (addr.0, port))
                    .collect();
                (
                    VirtualClock::starting_at_micros(cp.epoch_micros),
                    cp.started_unix,
                )
            }
        };
        let epoch_micros = epoch.now_micros();
        let mut engine = EventLoop::new(&self.internet, &self.config, certs, &epoch);
        let checkpoint_frontier = |frontier: &[PendingReferral]| {
            frontier
                .iter()
                .map(|p| PendingUrl {
                    from: p.from,
                    url: p.url.clone(),
                    depth: p.depth,
                })
                .collect()
        };
        // ua-lint: allow(unordered-iteration) -- sorted here before it ever reaches a checkpoint
        let checkpoint_probed = |probed: &HashSet<(u32, u16)>| {
            let mut v: Vec<(Ipv4, u16)> = probed.iter().map(|&(a, p)| (Ipv4(a), p)).collect();
            v.sort_by_key(|&(a, p)| (a.0, p));
            v
        };

        // One full phase (sweep, then referral levels for suites that
        // have them) per registered suite, in ascending port order —
        // mirroring the threaded engine exactly. Phases already behind
        // `suite_cursor` were completed by the aborted run.
        let suites = self.config.effective_suites();
        let start_cursor = suite_cursor.min(suites.len());
        let mut sweep_total = carried_sweep;
        for (idx, (sweep_port, suite)) in suites.iter().enumerate().skip(start_cursor) {
            let sweep_port = *sweep_port;
            engine.set_suite(Arc::clone(suite));
            let follows = suite.follows_referrals();
            let phase_sweep_done = idx == start_cursor && sweep_done;
            if !phase_sweep_done {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut jobs = SweepJobs {
                    walk: SweepWalk::new(universe, &mut rng, 0, 1),
                    internet: &self.internet,
                    blocklist: &self.blocklist,
                    port: sweep_port,
                    seed,
                    stats: SweepStats::default(),
                    cursor: 0,
                    resume: if idx == start_cursor {
                        resume_filter.take()
                    } else {
                        None
                    },
                };
                let run = engine.run(&mut jobs, Some(cancel), &mut |_, record, micros| {
                    probe_micros += micros;
                    // ua-lint: allow(panic-hygiene) -- sweep admission only emits jobs with a listener
                    let record = record.expect("sweep jobs always have a listener");
                    if record.speaks() {
                        opcua_hosts += 1;
                    } else {
                        non_opcua_hosts += 1;
                    }
                    fault_stats.observe(&record);
                    if follows {
                        collect_referrals(suite.as_ref(), &record, &mut frontier);
                    }
                    sink(record);
                    cancel.notch();
                });
                match run {
                    EngineRun::Cancelled { unemitted } => {
                        return ScanOutcome::Aborted {
                            checkpoint: Box::new(SweepCheckpoint {
                                seed,
                                epoch_micros,
                                started_unix,
                                suite_cursor: idx,
                                sweep_done: false,
                                next_step: jobs.cursor,
                                in_flight: unemitted,
                                sweep_stats: sweep_total + jobs.stats,
                                opcua_hosts,
                                non_opcua_hosts,
                                probe_micros,
                                frontier: checkpoint_frontier(&frontier),
                                referral_stats: ref_stats,
                                fault_stats,
                                probed_referrals: checkpoint_probed(&probed),
                            }),
                        };
                    }
                    EngineRun::Complete => sweep_total = sweep_total + jobs.stats,
                }
            }

            // Referral phase: levels are atomic (cancellation lands on
            // level boundaries), targets within a level run on the wheel.
            // Suites without referral following skip straight to the
            // next phase — their frontier is never populated.
            if follows {
                loop {
                    if cancel.is_cancelled() {
                        return ScanOutcome::Aborted {
                            checkpoint: Box::new(SweepCheckpoint {
                                seed,
                                epoch_micros,
                                started_unix,
                                suite_cursor: idx,
                                sweep_done: true,
                                next_step: 0,
                                in_flight: Vec::new(),
                                sweep_stats: sweep_total,
                                opcua_hosts,
                                non_opcua_hosts,
                                probe_micros,
                                frontier: checkpoint_frontier(&frontier),
                                referral_stats: ref_stats,
                                fault_stats,
                                probed_referrals: checkpoint_probed(&probed),
                            }),
                        };
                    }
                    if frontier.is_empty() {
                        break;
                    }
                    let level = self.classify_level(
                        universe,
                        sweep_port,
                        &mut frontier,
                        &mut ref_stats,
                        &mut probed,
                    );
                    let mut jobs = level.iter().enumerate().map(|(i, t)| Job {
                        ordinal: i as u64,
                        addr: t.addr,
                        port: t.port,
                        via: DiscoveredVia::Referral {
                            from: t.from,
                            depth: t.depth,
                        },
                        seed: referral_seed(seed, t.addr, t.port),
                        listening: self.internet.has_listener(t.addr, t.port),
                    });
                    let run = engine.run(&mut jobs, None, &mut |_, record, micros| {
                        probe_micros += micros;
                        match record {
                            None => ref_stats.dead += 1,
                            Some(record) => {
                                if record.speaks() {
                                    ref_stats.opcua_hosts += 1;
                                    opcua_hosts += 1;
                                } else {
                                    ref_stats.non_opcua_hosts += 1;
                                    non_opcua_hosts += 1;
                                }
                                fault_stats.observe(&record);
                                collect_referrals(suite.as_ref(), &record, &mut frontier);
                                sink(record);
                                cancel.notch();
                            }
                        }
                    });
                    debug_assert!(matches!(run, EngineRun::Complete));
                }
            }
            // The next phase deduplicates referrals afresh, exactly like
            // the threaded engine's per-phase `follow_referrals` state.
            probed.clear();
        }
        let sweep_stats = sweep_total;

        // Completion: account campaign time exactly as the threaded
        // engine does, from the same order-independent sums.
        let mut summary = ScanSummary {
            sweep: sweep_stats,
            referrals: ref_stats,
            opcua_hosts,
            non_opcua_hosts,
            certs: certs.stats(),
            started_unix,
            finished_unix: 0,
            faults: fault_stats,
        };
        let paced_probes = summary.sweep.probes_sent + summary.referrals.followed;
        let pacing_micros =
            paced_probes.saturating_mul(1_000_000) / self.config.probes_per_second.max(1);
        self.internet.clock().advance_micros(pacing_micros);
        self.internet.clock().advance_micros(probe_micros);
        summary.finished_unix = self.internet.clock().now_unix_seconds();
        ScanOutcome::Complete {
            summary,
            engine: engine.stats(),
        }
    }

    /// The referral phase: classifies every announced URL, then probes
    /// accepted targets breadth-first, level by level. Targets within a
    /// level are probed across [`ScanConfig::workers`] threads and
    /// merged back into queue order, so emission order — and therefore
    /// the full record stream — is independent of the worker count.
    #[allow(clippy::too_many_arguments)]
    fn follow_referrals<F>(
        &self,
        universe: &[Cidr],
        seed: u64,
        epoch: &VirtualClock,
        certs: &CertStore,
        sweep_port: u16,
        suite: &Arc<dyn ProtocolSuite>,
        mut frontier: Vec<PendingReferral>,
        probe_micros: &mut u64,
        mut emit: F,
    ) -> ReferralStats
    where
        F: FnMut(ScanRecord),
    {
        let mut stats = ReferralStats::default();
        // (address, port) pairs probed by the referral phase itself;
        // sweep coverage is checked structurally (port + universe).
        // ua-lint: allow(unordered-iteration) -- dedup membership only, never iterated
        let mut probed: HashSet<(u32, u16)> = HashSet::new();
        while !frontier.is_empty() {
            let level =
                self.classify_level(universe, sweep_port, &mut frontier, &mut stats, &mut probed);
            for (maybe_record, micros) in
                self.probe_referral_level(&level, epoch, certs, suite, seed)
            {
                *probe_micros += micros;
                match maybe_record {
                    None => stats.dead += 1,
                    Some(record) => {
                        if record.speaks() {
                            stats.opcua_hosts += 1;
                        } else {
                            stats.non_opcua_hosts += 1;
                        }
                        collect_referrals(suite.as_ref(), &record, &mut frontier);
                        emit(record);
                    }
                }
            }
        }
        stats
    }

    /// Classifies one drained referral frontier into the accepted probe
    /// targets for the next breadth-first level. This is the single
    /// copy of the disposition logic (unfollowable → blocklist → dedup
    /// → depth/budget) shared by the threaded referral phase and the
    /// event-loop engine — one copy, so the two engines cannot drift.
    fn classify_level(
        &self,
        universe: &[Cidr],
        sweep_port: u16,
        frontier: &mut Vec<PendingReferral>,
        stats: &mut ReferralStats,
        // ua-lint: allow(unordered-iteration) -- dedup membership only, never iterated
        probed: &mut HashSet<(u32, u16)>,
    ) -> Vec<ReferralTarget> {
        let mut level: Vec<ReferralTarget> = Vec::new();
        for pending in frontier.drain(..) {
            stats.urls_announced += 1;
            let Some((addr, port)) = OpcUrl::parse(&pending.url).ok().and_then(|u| u.target())
            else {
                stats.unfollowable += 1;
                continue;
            };
            if self.blocklist.contains(addr) {
                stats.blocklisted += 1;
                continue;
            }
            // Deduplicate against this phase's sweep (which SYN-probed
            // every non-blocklisted universe address on the phase's
            // port, responsive or not) and against earlier
            // referral probes — this is what terminates A→B→A
            // loops.
            let swept = port == sweep_port && universe.iter().any(|c| c.contains(addr));
            if swept || probed.contains(&(addr.0, port)) {
                stats.already_probed += 1;
                continue;
            }
            if pending.depth > self.config.referral_depth
                || (stats.followed as usize) >= self.config.referral_budget
            {
                stats.truncated += 1;
                continue;
            }
            probed.insert((addr.0, port));
            stats.followed += 1;
            stats.max_depth = stats.max_depth.max(pending.depth);
            level.push(ReferralTarget {
                addr,
                port,
                from: pending.from,
                depth: pending.depth,
            });
        }
        level
    }

    /// Probes one referral level, returning `(record, micros)` per
    /// target in target order — `None` for dead targets (nothing
    /// listening; charged one SYN timeout). With more than one worker,
    /// targets are probed on `index % workers` threads; per-host clock
    /// forks make the results order-independent, so placing them back by
    /// index reproduces the sequential output exactly.
    fn probe_referral_level(
        &self,
        targets: &[ReferralTarget],
        epoch: &VirtualClock,
        certs: &CertStore,
        suite: &Arc<dyn ProtocolSuite>,
        seed: u64,
    ) -> Vec<(Option<ScanRecord>, u64)> {
        let workers = self.config.effective_workers().min(targets.len().max(1));
        let probe_one = |stack: &mut Vec<Box<dyn Probe>>, t: &ReferralTarget| {
            if !self.internet.has_listener(t.addr, t.port) {
                // Dead target: charge exactly what the failed connect
                // costs under the simulator's TCP model — one RTT for a
                // refused port on a live host, a full SYN timeout when
                // no host answers — measured on a throwaway clock fork.
                let clock = epoch.fork();
                let start = clock.now_micros();
                let _ = self.internet.with_clock(clock.clone()).connect(
                    self.config.scanner_address,
                    t.addr,
                    t.port,
                );
                return (None, clock.now_micros().saturating_sub(start));
            }
            let via = DiscoveredVia::Referral {
                from: t.from,
                depth: t.depth,
            };
            let (record, micros) = self.probe_host_at_epoch(
                epoch,
                certs,
                suite,
                stack,
                t.addr,
                t.port,
                via,
                referral_seed(seed, t.addr, t.port),
            );
            (Some(record), micros)
        };
        if workers == 1 {
            let mut stack = suite.stack();
            return targets.iter().map(|t| probe_one(&mut stack, t)).collect();
        }
        let mut results: Vec<(Option<ScanRecord>, u64)> = Vec::new();
        results.resize_with(targets.len(), || (None, 0));
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel();
            for shard in 0..workers {
                let tx = tx.clone();
                let probe_one = &probe_one;
                scope.spawn(move || {
                    let mut stack = suite.stack();
                    for (i, t) in targets.iter().enumerate().skip(shard).step_by(workers) {
                        let _ = tx.send((i, probe_one(&mut stack, t)));
                    }
                });
            }
            drop(tx);
            for (i, outcome) in rx {
                results[i] = outcome;
            }
        });
        results
    }

    /// The multi-worker engine: N scoped threads each sweep their shard
    /// of the permutation and probe their hosts; the coordinator merges
    /// the N position-sorted streams back into global discovery order.
    #[allow(clippy::too_many_arguments)]
    fn scan_sharded<F>(
        &self,
        universe: &[Cidr],
        seed: u64,
        workers: usize,
        epoch: &VirtualClock,
        certs: &CertStore,
        sweep_port: u16,
        suite: &Arc<dyn ProtocolSuite>,
        probe_micros: &mut u64,
        mut emit: F,
    ) -> SweepStats
    where
        F: FnMut(ScanRecord),
    {
        let capacity = self.config.effective_channel_capacity();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            let mut rxs = Vec::with_capacity(workers);
            for shard in 0..workers {
                let (tx, rx) = mpsc::sync_channel::<ShardItem>(capacity);
                rxs.push(rx);
                let epoch = epoch.clone();
                let suite = Arc::clone(suite);
                handles.push(scope.spawn(move || {
                    let syn = SynScanner::new(
                        &self.internet,
                        &self.blocklist,
                        self.sweep_config(sweep_port),
                    );
                    let mut rng = StdRng::seed_from_u64(seed);
                    let mut stack = suite.stack();
                    syn.sweep_shard(
                        universe,
                        &mut rng,
                        shard as u64,
                        workers as u64,
                        |pos, addr| {
                            let (record, micros) = self.probe_host_at_epoch(
                                &epoch,
                                certs,
                                &suite,
                                &mut stack,
                                addr,
                                sweep_port,
                                DiscoveredVia::Sweep,
                                seed ^ u64::from(addr.0),
                            );
                            // A dropped coordinator means the scan was
                            // abandoned; keep sweeping for the stats.
                            let _ = tx.send((pos, record, micros));
                        },
                    )
                }));
            }
            // N-way merge: each shard stream is sorted by permutation
            // position and positions are globally unique, so repeatedly
            // emitting the smallest head reproduces discovery order
            // exactly. Blocking on one shard is fine — the others run
            // ahead into their bounded buffers.
            let mut heads: Vec<Option<ShardItem>> = rxs.iter().map(|rx| rx.recv().ok()).collect();
            while let Some(next) = heads
                .iter()
                .enumerate()
                .filter_map(|(i, h)| h.as_ref().map(|(pos, _, _)| (*pos, i)))
                .min()
                .map(|(_, i)| i)
            {
                // ua-lint: allow(panic-hygiene) -- `next` was selected because this head is Some
                let (_pos, record, micros) = heads[next].take().expect("head present");
                *probe_micros += micros;
                emit(record);
                heads[next] = rxs[next].recv().ok();
            }
            handles
                .into_iter()
                // ua-lint: allow(panic-hygiene) -- re-raise a worker panic on the coordinating thread
                .map(|h| h.join().expect("scan shard panicked"))
                .fold(SweepStats::default(), |acc, s| acc + s)
        })
    }

    fn sweep_config(&self, port: u16) -> SweepConfig {
        SweepConfig {
            probes_per_second: self.config.probes_per_second,
            port,
        }
    }

    /// Convenience: runs [`Self::scan_with`] and collects all records.
    pub fn scan_collect(&self, universe: &[Cidr], seed: u64) -> (ScanSummary, Vec<ScanRecord>) {
        let mut records = Vec::new();
        let summary = self.scan_with(universe, seed, |r| records.push(r));
        (summary, records)
    }

    /// Runs the campaign on a coordinator thread (plus
    /// [`ScanConfig::workers`] shard threads), streaming records through
    /// a bounded channel. Iterate the returned [`ScanStream`] to consume
    /// records as they are produced; call [`ScanStream::finish`] for the
    /// summary. Record order is identical to [`Self::scan_with`] for any
    /// worker count — shards merge back into discovery order.
    pub fn scan_stream(self, universe: Vec<Cidr>, seed: u64) -> ScanStream {
        let (tx, rx) = mpsc::sync_channel(self.config.channel_capacity.max(1));
        let handle = std::thread::spawn(move || {
            self.scan_with(&universe, seed, |record| {
                // A dropped receiver means the consumer stopped caring;
                // keep scanning for the summary but stop pushing.
                let _ = tx.send(record);
            })
        });
        ScanStream {
            rx: Some(rx),
            handle: Some(handle),
        }
    }
}

/// One merged unit from a shard: (global permutation step, record,
/// virtual probe microseconds).
type ShardItem = (u64, ScanRecord, u64);

/// Resume filter over the permutation walk: steps before `next_step`
/// were already examined by the aborted run — they are skipped unless
/// listed in `pending` (admitted but never emitted, so they must be
/// fully re-probed).
struct ResumeFilter {
    next_step: u64,
    // ua-lint: allow(unordered-iteration) -- membership checks only, never iterated
    pending: HashSet<u64>,
}

/// Admission-side adapter for the event-loop engine: walks the zmap
/// permutation and replicates `SynScanner::sweep_shard`'s
/// classification (blocklist → probe counted → listener check, in
/// exactly that order) so the sweep counters stay byte-identical to the
/// threaded engine's. Owns the counters and the walk cursor so the
/// engine can checkpoint mid-walk.
struct SweepJobs<'a> {
    walk: SweepWalk,
    internet: &'a Internet,
    blocklist: &'a Blocklist,
    port: u16,
    seed: u64,
    /// Counters for every step this iterator examined (resume catch-up
    /// steps are *not* recounted — the checkpoint already has them).
    stats: SweepStats,
    /// First walk step not yet examined; becomes the checkpoint's
    /// `next_step` on abort.
    cursor: u64,
    resume: Option<ResumeFilter>,
}

impl SweepJobs<'_> {
    fn job(&self, pos: u64, addr: Ipv4) -> Job {
        Job {
            ordinal: pos,
            addr,
            port: self.port,
            via: DiscoveredVia::Sweep,
            seed: self.seed ^ u64::from(addr.0),
            listening: true,
        }
    }
}

impl Iterator for SweepJobs<'_> {
    type Item = Job;

    fn next(&mut self) -> Option<Job> {
        loop {
            let (pos, addr) = self.walk.next()?;
            self.cursor = pos + 1;
            if let Some(filter) = &self.resume {
                if pos < filter.next_step {
                    // Settled by the aborted run — its stats already
                    // cover this step — unless it was still in flight,
                    // in which case it is re-admitted (and only
                    // re-admitted: no recounting).
                    if filter.pending.contains(&pos) {
                        return Some(self.job(pos, addr));
                    }
                    continue;
                }
            }
            if self.blocklist.contains(addr) {
                self.stats.blocklisted += 1;
                continue;
            }
            self.stats.probes_sent += 1;
            if self.internet.has_listener(addr, self.port) {
                self.stats.responsive += 1;
                return Some(self.job(pos, addr));
            }
        }
    }
}

/// Harvests a record's referred URLs — as the probing suite interprets
/// them — into the referral frontier, one chain level deeper than the
/// record itself.
fn collect_referrals(
    suite: &dyn ProtocolSuite,
    record: &ScanRecord,
    frontier: &mut Vec<PendingReferral>,
) {
    let depth = record.via.depth() + 1;
    for url in suite.referrals(record) {
        frontier.push(PendingReferral {
            from: record.address,
            url: url.clone(),
            depth,
        });
    }
}

/// Per-target nonce seed for referral probes — a pure function of the
/// campaign seed and the target, so record contents never depend on
/// probe order or worker count.
fn referral_seed(seed: u64, addr: Ipv4, port: u16) -> u64 {
    seed ^ u64::from(addr.0) ^ (u64::from(port) << 32)
}

/// Probes a `(addr, port)` target through `internet` (whichever clock it
/// carries) with `suite`'s payload template and `stack`, filling in the
/// transport accounting.
#[allow(clippy::too_many_arguments)]
fn probe_host_on(
    internet: &Internet,
    config: &ScanConfig,
    certs: &CertStore,
    suite: &Arc<dyn ProtocolSuite>,
    stack: &mut [Box<dyn Probe>],
    addr: netsim::Ipv4,
    port: u16,
    via: DiscoveredVia,
    seed: u64,
) -> ScanRecord {
    let mut record = ScanRecord::for_target(
        addr,
        port,
        via,
        internet.as_number(addr),
        internet.clock().now_unix_seconds(),
    );
    record.payload = suite.payload();
    let mut ctx = ProbeContext::for_target(internet, config, certs, addr, port, seed);
    ctx.suite = Arc::clone(suite);
    for probe in stack.iter_mut() {
        if probe.run(&mut ctx, &mut record) == ProbeOutcome::Stop {
            break;
        }
    }
    // Added, not assigned: stages that opened side connections (the
    // vendor-fingerprint stage) have already folded their traffic in via
    // `ScanRecord::account`.
    if let Some(client) = &ctx.client {
        record.requests += client.requests_sent();
        let stats = client.stats();
        record.tx_bytes += stats.tx_bytes;
        record.rx_bytes += stats.rx_bytes;
    }
    record
}

/// Iterator over streamed scan records (see [`Scanner::scan_stream`]).
pub struct ScanStream {
    rx: Option<mpsc::Receiver<ScanRecord>>,
    handle: Option<JoinHandle<ScanSummary>>,
}

impl Iterator for ScanStream {
    type Item = ScanRecord;

    fn next(&mut self) -> Option<ScanRecord> {
        self.rx.as_ref()?.recv().ok()
    }
}

impl ScanStream {
    /// Waits for the campaign to end and returns its summary. Pending
    /// records are drained and dropped; iterate first to keep them.
    pub fn finish(mut self) -> ScanSummary {
        // Dropping the receiver unblocks a producer waiting on a full
        // channel.
        self.rx = None;
        self.handle
            .take()
            // ua-lint: allow(panic-hygiene) -- finish() consumes self; the handle is present by construction
            .expect("finish called once")
            .join()
            // ua-lint: allow(panic-hygiene) -- re-raise a worker panic on the coordinating thread
            .expect("scan worker panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SessionOutcome;
    use netsim::{Ipv4, VirtualClock};
    use std::sync::Arc;
    use ua_addrspace::{NodeAccess, SpaceBuilder};
    use ua_server::{ServerConfig, ServerCore, UaServerService};
    use ua_types::Variant;

    fn wide_open_internet(addrs: &[Ipv4]) -> Internet {
        let net = Internet::new(VirtualClock::starting_at(1_581_206_400));
        for (i, &addr) in addrs.iter().enumerate() {
            let url = format!("opc.tcp://{addr}:4840/");
            let mut b = SpaceBuilder::new(&["urn:test:dev"], "1.0");
            let f = b.folder(None, "Plant");
            b.variable(&f, "inflow", Variant::Double(1.5), NodeAccess::read_only());
            b.variable(
                &f,
                "setpoint",
                Variant::Float(50.0),
                NodeAccess::read_write_all(),
            );
            b.method(&f, "Flush", true);
            let core = ServerCore::new(
                ServerConfig::wide_open(format!("urn:test:dev{i}"), url),
                b.finish(),
                7 + i as u64,
            );
            net.add_host(addr, 10_000);
            net.bind(addr, 4840, Arc::new(UaServerService::new(core, 5)));
        }
        net
    }

    #[test]
    fn scan_probes_wide_open_host_end_to_end() {
        let addr = Ipv4::new(10, 0, 0, 7);
        let net = wide_open_internet(&[addr]);
        let scanner = Scanner::new(net, Blocklist::new(), ScanConfig::default());
        let universe: Cidr = "10.0.0.0/24".parse().unwrap();
        let (summary, records) = scanner.scan_collect(&[universe], 1);

        assert_eq!(summary.sweep.probes_sent, 256);
        assert_eq!(summary.opcua_hosts, 1);
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.address, addr);
        assert!(r.hello_ok());
        assert_eq!(r.application_uri(), Some("urn:test:dev0"));
        assert_eq!(r.endpoints().len(), 1);
        assert!(r.advertises_anonymous());
        assert_eq!(r.session(), SessionOutcome::AnonymousActivated);
        let t = r.traversal().expect("traversal ran");
        assert!(t.nodes > 3);
        assert_eq!(t.writable, 1);
        assert_eq!(t.executable, 1);
        assert!(r.requests > 3);
        assert!(r.tx_bytes > 0);
    }

    #[test]
    fn streamed_scan_matches_sync_scan() {
        let addrs = [
            Ipv4::new(10, 1, 0, 3),
            Ipv4::new(10, 1, 0, 99),
            Ipv4::new(10, 1, 0, 200),
        ];
        let net = wide_open_internet(&addrs);
        let universe: Cidr = "10.1.0.0/24".parse().unwrap();

        // Two independent clocks would drift; rebuild for a fair
        // comparison of record *content*.
        let sync_scanner = Scanner::new(net.clone(), Blocklist::new(), ScanConfig::default());
        let (_, sync_records) = sync_scanner.scan_collect(&[universe], 9);

        let net2 = wide_open_internet(&addrs);
        let stream_scanner = Scanner::new(net2, Blocklist::new(), ScanConfig::default());
        let mut stream = stream_scanner.scan_stream(vec![universe], 9);
        let streamed: Vec<_> = stream.by_ref().collect();
        let summary = stream.finish();

        assert_eq!(summary.opcua_hosts, 3);
        assert_eq!(streamed.len(), sync_records.len());
        for (a, b) in streamed.iter().zip(&sync_records) {
            assert_eq!(a.address, b.address);
            assert_eq!(a.endpoints(), b.endpoints());
            assert_eq!(a.session(), b.session());
        }
    }

    #[test]
    fn bounded_channel_backpressure_keeps_all_records() {
        let addrs: Vec<Ipv4> = (0..20).map(|i| Ipv4::new(10, 2, 0, 10 + i)).collect();
        let net = wide_open_internet(&addrs);
        let universe: Cidr = "10.2.0.0/24".parse().unwrap();
        let config = ScanConfig {
            channel_capacity: 2, // far smaller than the host count
            ..ScanConfig::default()
        };
        let scanner = Scanner::new(net, Blocklist::new(), config);
        let mut stream = scanner.scan_stream(vec![universe], 4);
        let records: Vec<_> = stream.by_ref().collect();
        let summary = stream.finish();
        assert_eq!(records.len(), 20);
        assert_eq!(summary.opcua_hosts, 20);
    }

    #[test]
    fn non_opcua_listener_counted_but_not_recorded_as_opcua() {
        struct Junk;
        struct JunkConn;
        impl netsim::Connection for JunkConn {
            fn on_data(&mut self, _d: &[u8]) -> netsim::ConnectionOutput {
                netsim::ConnectionOutput::close_with(b"HTTP/1.1 400\r\n\r\n".to_vec())
            }
        }
        impl netsim::Service for Junk {
            fn open_connection(&self, _peer: Ipv4) -> Box<dyn netsim::Connection> {
                Box::new(JunkConn)
            }
        }
        let net = Internet::new(VirtualClock::starting_at(0));
        let addr = Ipv4::new(10, 3, 0, 1);
        net.add_host(addr, 1000);
        net.bind(addr, 4840, Arc::new(Junk));
        let scanner = Scanner::new(net, Blocklist::new(), ScanConfig::default());
        let universe: Cidr = "10.3.0.0/28".parse().unwrap();
        let (summary, records) = scanner.scan_collect(&[universe], 2);
        assert_eq!(summary.sweep.responsive, 1);
        assert_eq!(summary.opcua_hosts, 0);
        assert_eq!(summary.non_opcua_hosts, 1);
        assert_eq!(records.len(), 1);
        assert!(!records[0].hello_ok());
    }

    /// Binds an OPC UA server (optionally an LDS with referrals) at
    /// `(addr, port)` on `net`.
    fn bind_server(net: &Internet, addr: Ipv4, port: u16, lds: bool, refs: &[&str], salt: u64) {
        let url = format!("opc.tcp://{addr}:{port}/");
        let mut b = SpaceBuilder::new(&["urn:test:ref"], "1.0");
        let f = b.folder(None, "Plant");
        b.variable(&f, "level", Variant::Double(1.0), NodeAccess::read_only());
        let mut config = ServerConfig::wide_open(format!("urn:test:ref:{addr}:{port}"), url);
        config.is_discovery_server = lds;
        config.referenced_endpoints = refs.iter().map(|s| s.to_string()).collect();
        let core = ServerCore::new(config, b.finish(), salt);
        if !net.host_exists(addr) {
            net.add_host(addr, 10_000);
        }
        net.bind(addr, port, Arc::new(UaServerService::new(core, salt ^ 0xF)));
    }

    fn referral_scan(
        net: Internet,
        blocklist: Blocklist,
        config: ScanConfig,
    ) -> (ScanSummary, Vec<ScanRecord>) {
        let scanner = Scanner::new(net, blocklist, config);
        let universe: Cidr = "10.50.0.0/24".parse().unwrap();
        scanner.scan_collect(&[universe], 11)
    }

    #[test]
    fn hidden_host_reached_only_via_referral_with_provenance() {
        let net = Internet::new(VirtualClock::starting_at(1_581_206_400));
        let lds = Ipv4::new(10, 50, 0, 1);
        let hidden = Ipv4::new(10, 50, 0, 2);
        bind_server(&net, hidden, 4848, false, &[], 7);
        bind_server(&net, lds, 4840, true, &["opc.tcp://10.50.0.2:4848/"], 8);

        let (summary, records) = referral_scan(net, Blocklist::new(), ScanConfig::default());
        assert_eq!(summary.opcua_hosts, 2);
        assert_eq!(summary.referrals.followed, 1);
        assert_eq!(summary.referrals.opcua_hosts, 1);
        assert_eq!(summary.referrals.max_depth, 1);
        assert_eq!(records.len(), 2);
        // Sweep record first, referral record after.
        assert_eq!(records[0].address, lds);
        assert_eq!(records[0].via, DiscoveredVia::Sweep);
        let r = &records[1];
        assert_eq!(r.address, hidden);
        assert_eq!(r.port, 4848);
        assert_eq!(
            r.via,
            DiscoveredVia::Referral {
                from: lds,
                depth: 1
            }
        );
        assert!(r.hello_ok());
        assert!(!r.endpoints().is_empty());
    }

    #[test]
    fn dead_and_unfollowable_referrals_accounted_not_recorded() {
        let net = Internet::new(VirtualClock::starting_at(0));
        let lds = Ipv4::new(10, 50, 0, 1);
        bind_server(
            &net,
            lds,
            4840,
            true,
            &[
                "opc.tcp://10.50.0.99:4855/",   // nothing listens there
                "opc.tcp://plc.internal:4840/", // unresolvable name
                "http://10.50.0.3:4840/",       // wrong scheme
            ],
            3,
        );
        let (summary, records) = referral_scan(net, Blocklist::new(), ScanConfig::default());
        assert_eq!(records.len(), 1, "dead referrals must not produce records");
        assert_eq!(summary.referrals.urls_announced, 3);
        assert_eq!(summary.referrals.followed, 1);
        assert_eq!(summary.referrals.dead, 1);
        assert_eq!(summary.referrals.unfollowable, 2);
        assert_eq!(summary.referrals.opcua_hosts, 0);
    }

    #[test]
    fn referral_loops_terminate_with_each_target_probed_once() {
        let net = Internet::new(VirtualClock::starting_at(0));
        let a = Ipv4::new(10, 50, 0, 1);
        let b = Ipv4::new(10, 50, 0, 2);
        // A (swept) → B (non-default port) → A, plus B → B variants.
        bind_server(&net, a, 4840, true, &["opc.tcp://10.50.0.2:4850/"], 1);
        bind_server(
            &net,
            b,
            4850,
            true,
            &[
                "opc.tcp://10.50.0.1:4840/", // back to A: swept already
                "OPC.TCP://10.50.0.2:4850",  // itself, non-canonical
            ],
            2,
        );
        let (summary, records) = referral_scan(net, Blocklist::new(), ScanConfig::default());
        assert_eq!(records.len(), 2);
        assert_eq!(summary.referrals.followed, 1, "B probed exactly once");
        // B's self-URL never even reaches the queue (filtered by the
        // probe's normalization); the loop-back to A dedups as swept.
        assert_eq!(summary.referrals.already_probed, 1);
        assert_eq!(summary.referrals.urls_announced, 2);
    }

    #[test]
    fn chains_respect_depth_limit() {
        let net = Internet::new(VirtualClock::starting_at(0));
        let a = Ipv4::new(10, 50, 0, 1);
        let b = Ipv4::new(10, 50, 0, 2);
        let c = Ipv4::new(10, 50, 0, 3);
        // A (swept) → B:4851 → C:4852.
        bind_server(&net, a, 4840, true, &["opc.tcp://10.50.0.2:4851/"], 1);
        bind_server(&net, b, 4851, true, &["opc.tcp://10.50.0.3:4852/"], 2);
        bind_server(&net, c, 4852, false, &[], 3);

        let deep = ScanConfig::default();
        let (summary, records) = referral_scan(net.clone(), Blocklist::new(), deep);
        assert_eq!(records.len(), 3);
        assert_eq!(summary.referrals.max_depth, 2);
        assert_eq!(
            records[2].via,
            DiscoveredVia::Referral { from: b, depth: 2 }
        );

        let shallow = ScanConfig {
            referral_depth: 1,
            ..ScanConfig::default()
        };
        let (summary, records) = referral_scan(net, Blocklist::new(), shallow);
        assert_eq!(records.len(), 2, "depth-2 target must not be probed");
        assert_eq!(summary.referrals.truncated, 1);
        assert_eq!(summary.referrals.max_depth, 1);
    }

    #[test]
    fn referral_budget_truncates() {
        let net = Internet::new(VirtualClock::starting_at(0));
        let lds = Ipv4::new(10, 50, 0, 1);
        let refs: Vec<String> = (0..4)
            .map(|i| format!("opc.tcp://10.50.0.{}:4860/", 10 + i))
            .collect();
        let ref_strs: Vec<&str> = refs.iter().map(String::as_str).collect();
        bind_server(&net, lds, 4840, true, &ref_strs, 1);
        for i in 0..4u8 {
            bind_server(
                &net,
                Ipv4::new(10, 50, 0, 10 + i),
                4860,
                false,
                &[],
                5 + i as u64,
            );
        }
        let config = ScanConfig {
            referral_budget: 2,
            ..ScanConfig::default()
        };
        let (summary, records) = referral_scan(net, Blocklist::new(), config);
        assert_eq!(summary.referrals.followed, 2);
        assert_eq!(summary.referrals.truncated, 2);
        assert_eq!(records.len(), 3); // LDS + 2 within budget
    }

    #[test]
    fn blocklisted_referral_targets_never_probed() {
        let net = Internet::new(VirtualClock::starting_at(0));
        let lds = Ipv4::new(10, 50, 0, 1);
        let victim = Ipv4::new(10, 50, 1, 7); // outside the swept /24
        bind_server(&net, lds, 4840, true, &["opc.tcp://10.50.1.7:4840/"], 1);
        bind_server(&net, victim, 4840, false, &[], 2);

        let mut blocklist = Blocklist::new();
        blocklist.add_str("10.50.1.0/24").unwrap();
        let (summary, records) = referral_scan(net, blocklist, ScanConfig::default());
        assert_eq!(records.len(), 1, "opted-out host probed via referral");
        assert_eq!(summary.referrals.blocklisted, 1);
        assert_eq!(summary.referrals.followed, 0);
    }

    #[test]
    fn referral_to_unswept_address_on_default_port_is_followed() {
        // A referral can escape the configured universe: an address
        // outside every swept block is fresh even on the sweep port.
        let net = Internet::new(VirtualClock::starting_at(0));
        let lds = Ipv4::new(10, 50, 0, 1);
        let outside = Ipv4::new(192, 168, 9, 9);
        bind_server(&net, lds, 4840, true, &["opc.tcp://192.168.9.9:4840/"], 1);
        bind_server(&net, outside, 4840, false, &[], 2);
        let (summary, records) = referral_scan(net, Blocklist::new(), ScanConfig::default());
        assert_eq!(summary.referrals.followed, 1);
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].address, outside);
    }

    #[test]
    fn referral_disposition_buckets_partition_announcements() {
        // urls_announced = unfollowable + already_probed + blocklisted
        //                + truncated + followed, on a messy world.
        let net = Internet::new(VirtualClock::starting_at(0));
        let lds = Ipv4::new(10, 50, 0, 1);
        bind_server(
            &net,
            lds,
            4840,
            true,
            &[
                "opc.tcp://10.50.0.2:4848/",
                "opc.tcp://10.50.0.1:4840/x", // own target, path variant → filtered pre-record
                "opc.tcp://10.50.0.3:4840/",  // swept (dedup)
                "bogus",
            ],
            1,
        );
        bind_server(&net, Ipv4::new(10, 50, 0, 2), 4848, false, &[], 2);
        bind_server(&net, Ipv4::new(10, 50, 0, 3), 4840, false, &[], 3);
        let (summary, _) = referral_scan(net, Blocklist::new(), ScanConfig::default());
        let r = summary.referrals;
        assert_eq!(
            r.urls_announced,
            r.unfollowable + r.already_probed + r.blocklisted + r.truncated + r.followed
        );
        assert_eq!(r.followed, r.dead + r.opcua_hosts + r.non_opcua_hosts);
        assert_eq!(r.followed, 1);
        assert_eq!(r.already_probed, 1);
        assert_eq!(r.unfollowable, 1);
    }

    #[test]
    fn blocklisted_hosts_never_probed() {
        let addr = Ipv4::new(10, 4, 0, 50);
        let net = wide_open_internet(&[addr]);
        let mut blocklist = Blocklist::new();
        blocklist.add_str("10.4.0.0/24").unwrap();
        let scanner = Scanner::new(net, blocklist, ScanConfig::default());
        let universe: Cidr = "10.4.0.0/24".parse().unwrap();
        let (summary, records) = scanner.scan_collect(&[universe], 3);
        assert_eq!(summary.sweep.blocklisted, 256);
        assert_eq!(summary.sweep.probes_sent, 0);
        assert!(records.is_empty());
    }
}
