//! Event-driven scan core: per-host probe state machines multiplexed
//! over a hierarchical timer wheel, with cooperative cancellation and
//! bounded-window backpressure.
//!
//! The threaded engine ([`crate::Scanner::scan_with_certs`] with
//! [`crate::ScanEngine::Threaded`]) dedicates an OS thread per shard and
//! blocks each thread through a whole probe. This module runs the same
//! probe stack as interleaved state machines on **one** thread:
//!
//! * every admitted target gets a private [`VirtualClock`] fork of the
//!   campaign epoch, so record contents stay a pure function of
//!   `(host, port, seed, epoch)` — exactly the byte-identity contract
//!   the threaded engine honors;
//! * stage transitions are scheduled on a [`TimerWheel`] keyed by the
//!   virtual time each stage consumed on its fork, so wheel order is the
//!   order a real event loop would observe completions;
//! * records are emitted strictly in admission (permutation-walk) order
//!   through an in-order frontier, and admission stalls once
//!   [`crate::ScanConfig::max_in_flight`] targets are in the window —
//!   throughput tracks the in-flight budget, not a worker count;
//! * a [`CancelToken`] aborts the loop between timer firings; everything
//!   in flight is dropped (fork clocks and all — the campaign clock
//!   never sees their time) and the admitted-but-unemitted window is
//!   reported so a [`SweepCheckpoint`] can resume deterministically.

use crate::pipeline::ReferralStats;
use crate::probe::{Probe, ProbeContext, ProbeOutcome, ScanConfig};
use crate::record::{DiscoveredVia, ScanRecord};
use crate::suite::{OpcUaSuite, ProtocolSuite};
use netsim::{Internet, Ipv4, SweepStats, TcpStreamSim, VirtualClock};
// ua-lint: allow(unordered-iteration) -- wheel/engine maps are id-keyed lookups; emission order comes from the sequence cursor
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use ua_client::UaClient;
use ua_crypto::CertStore;

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

/// A cooperative cancellation flag shared between a scan driver and
/// whoever wants to abort it.
///
/// Clones share the flag (the token is a handle, not the state). The
/// scan engine polls [`is_cancelled`] at safe points — between timer
/// firings during the sweep, and at referral-level boundaries — so
/// cancellation is prompt but never tears a probe mid-stage in a way
/// the checkpoint could not describe.
///
/// Cancellation composes with determinism: an aborted sweep reports a
/// [`SweepCheckpoint`], and resuming from it reproduces the exact byte
/// stream an uninterrupted run would have produced (see
/// [`crate::Scanner::scan_resumable`]).
///
/// ```
/// use scanner::CancelToken;
///
/// let token = CancelToken::new();
/// let shared = token.clone();
/// assert!(!shared.is_cancelled());
/// token.cancel();
/// assert!(shared.is_cancelled());
/// ```
///
/// [`is_cancelled`]: CancelToken::is_cancelled
#[derive(Debug, Clone)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
    /// Remaining record budget; negative means "no budget armed".
    budget: Arc<AtomicI64>,
}

impl CancelToken {
    /// A token that only cancels when [`cancel`] is called.
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn new() -> Self {
        CancelToken {
            cancelled: Arc::new(AtomicBool::new(false)),
            budget: Arc::new(AtomicI64::new(-1)),
        }
    }

    /// A token that cancels itself once `n` records have been emitted
    /// by the scan it is passed to — the deterministic abort hook:
    /// "stop after record 2 000" lands on the same record for the same
    /// seed every run, which is what lets CI abort a sweep at ~50% and
    /// diff the stitched abort+resume output byte-for-byte against an
    /// uninterrupted run.
    pub fn after_records(n: u64) -> Self {
        CancelToken {
            cancelled: Arc::new(AtomicBool::new(false)),
            budget: Arc::new(AtomicI64::new(n.min(i64::MAX as u64) as i64)),
        }
    }

    /// Raises the flag. Idempotent; every clone observes it.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// True once [`cancel`] was called (or a record budget ran out).
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// Consumes one unit of the record budget, cancelling when it hits
    /// zero. The scan engine calls this once per emitted record; a
    /// token built with [`CancelToken::new`] ignores it.
    pub fn notch(&self) {
        if self.budget.load(Ordering::SeqCst) < 0 {
            return;
        }
        if self.budget.fetch_sub(1, Ordering::SeqCst) <= 1 {
            self.cancel();
        }
    }

    /// An RAII guard that cancels this token when dropped, unless
    /// [`CancelGuard::disarm`]ed — the `ServerGuard` idiom: tie the
    /// scan's lifetime to a scope so an early return or panic upstream
    /// still winds the sweep down at the next safe point.
    pub fn guard(&self) -> CancelGuard {
        CancelGuard {
            token: self.clone(),
            armed: true,
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

/// Scope guard for a [`CancelToken`]; see [`CancelToken::guard`].
#[derive(Debug)]
pub struct CancelGuard {
    token: CancelToken,
    armed: bool,
}

impl CancelGuard {
    /// Defuses the guard: dropping it no longer cancels the token.
    /// Returns the token for further use.
    pub fn disarm(mut self) -> CancelToken {
        self.armed = false;
        self.token.clone()
    }
}

impl Drop for CancelGuard {
    fn drop(&mut self) {
        if self.armed {
            self.token.cancel();
        }
    }
}

// ---------------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------------

/// Levels in the hierarchy; horizon is `64^8` ticks (≈ 2.8 · 10¹⁴ µs,
/// about nine virtual years — far beyond any campaign).
const WHEEL_LEVELS: usize = 8;
/// Slots per level.
const WHEEL_SLOTS: usize = 64;
/// log2(WHEEL_SLOTS).
const SLOT_BITS: u32 = 6;

/// Handle for cancelling a scheduled timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

#[derive(Debug)]
struct TimerEntry<T> {
    deadline: u64,
    seq: u64,
    id: u64,
    value: T,
}

/// A hierarchical timer wheel (hashed-and-hierarchical, à la Varghese &
/// Lauck): eight levels of 64 slots at 1 µs tick granularity. Near
/// deadlines sit in level 0 where expiry is O(1); far deadlines park in
/// coarser levels and *cascade* down as the wheel turns.
///
/// Determinism guarantees the scan engine builds on:
///
/// * expiry happens in non-decreasing deadline order;
/// * timers sharing a deadline fire in one batch, ordered by insertion
///   (same-tick FIFO) — even when some of them cascaded in from coarser
///   levels and others were inserted at level 0 directly;
/// * [`cancel`]led timers never fire and never perturb the order of the
///   survivors.
///
/// [`cancel`]: TimerWheel::cancel
#[derive(Debug)]
pub struct TimerWheel<T> {
    /// `levels[level][slot]` holds entries whose deadline lands in that
    /// slot for the wheel's current rotation.
    levels: Vec<Vec<Vec<TimerEntry<T>>>>,
    /// One bit per slot, set while the slot holds any entries — lets
    /// the expiry scan skip empty slots (the common case: a wheel of
    /// 512 slots holding an in-flight window's worth of timers).
    occupied: [u64; WHEEL_LEVELS],
    now: u64,
    next_seq: u64,
    next_id: u64,
    // ua-lint: allow(unordered-iteration) -- liveness membership only, never iterated
    live: HashSet<u64>,
    /// Cancelled entries not yet physically pruned from their slot.
    /// While zero (the common case) expiry skips the prune pass.
    cancelled_pending: usize,
    cascades: u64,
}

impl<T> TimerWheel<T> {
    /// An empty wheel at tick 0.
    pub fn new() -> Self {
        TimerWheel {
            levels: (0..WHEEL_LEVELS)
                .map(|_| (0..WHEEL_SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            occupied: [0; WHEEL_LEVELS],
            now: 0,
            next_seq: 0,
            next_id: 0,
            // ua-lint: allow(unordered-iteration) -- liveness membership only, never iterated
            live: HashSet::new(),
            cancelled_pending: 0,
            cascades: 0,
        }
    }

    /// Current wheel time in ticks (µs). Advances on expiry only.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Live (scheduled, not yet fired or cancelled) timer count.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no live timers remain.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Number of entries that cascaded from a coarser level to a finer
    /// one over the wheel's lifetime — the cost a hierarchical wheel
    /// pays for O(1) insertion of far-future deadlines.
    pub fn cascades(&self) -> u64 {
        self.cascades
    }

    /// Schedules `value` to fire at absolute tick `deadline` (clamped to
    /// `now` when already past). Returns a handle for [`cancel`].
    ///
    /// [`cancel`]: TimerWheel::cancel
    pub fn insert(&mut self, deadline: u64, value: T) -> TimerId {
        let deadline = deadline.max(self.now);
        let id = self.next_id;
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(id);
        self.place(TimerEntry {
            deadline,
            seq,
            id,
            value,
        });
        TimerId(id)
    }

    /// Files an entry into the finest level that can represent its
    /// remaining delta. Used for both fresh inserts and cascades, so
    /// `seq`/`id` survive re-homing.
    fn place(&mut self, entry: TimerEntry<T>) {
        let delta = entry.deadline - self.now;
        let mut level = 0;
        while level + 1 < WHEEL_LEVELS && delta >= 1u64 << (SLOT_BITS * (level as u32 + 1)) {
            level += 1;
        }
        assert!(
            delta < 1u64 << (SLOT_BITS * WHEEL_LEVELS as u32),
            "timer deadline beyond wheel horizon"
        );
        let slot =
            ((entry.deadline >> (SLOT_BITS * level as u32)) & (WHEEL_SLOTS as u64 - 1)) as usize;
        self.levels[level][slot].push(entry);
        self.occupied[level] |= 1 << slot;
    }

    /// Cancels a timer; true when it was still live. The entry is
    /// pruned lazily — cancellation is O(1).
    pub fn cancel(&mut self, id: TimerId) -> bool {
        let was_live = self.live.remove(&id.0);
        if was_live {
            self.cancelled_pending += 1;
        }
        was_live
    }

    /// Drops every live timer, returning how many were dropped.
    pub fn clear(&mut self) -> usize {
        let dropped = self.live.len();
        self.live.clear();
        for level in &mut self.levels {
            for slot in level {
                slot.clear();
            }
        }
        self.occupied = [0; WHEEL_LEVELS];
        self.cancelled_pending = 0;
        dropped
    }

    /// Advances to the next deadline with live timers and returns
    /// `(deadline, values)` — all timers sharing that tick, in
    /// insertion order. `None` when the wheel is empty.
    pub fn expire_next(&mut self) -> Option<(u64, Vec<T>)> {
        loop {
            // Find the earliest live deadline, scanning coarse levels
            // first so a tie between a parked (coarse) entry and a
            // level-0 entry cascades the parked one down before firing
            // — otherwise the batch would split a tick.
            let mut min: Option<(u64, usize, usize)> = None;
            for level in (0..WHEEL_LEVELS).rev() {
                let mut bits = self.occupied[level];
                while bits != 0 {
                    let slot = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if self.cancelled_pending > 0 {
                        let live = &self.live;
                        let entries = &mut self.levels[level][slot];
                        let before = entries.len();
                        entries.retain(|e| live.contains(&e.id));
                        self.cancelled_pending -= before - entries.len();
                        if entries.is_empty() {
                            self.occupied[level] &= !(1u64 << slot);
                            continue;
                        }
                    }
                    for e in &self.levels[level][slot] {
                        if min.is_none_or(|(d, _, _)| e.deadline < d) {
                            min = Some((e.deadline, level, slot));
                        }
                    }
                }
            }
            let (deadline, level, slot) = min?;

            if level == 0 {
                self.now = self.now.max(deadline);
                let entries = &mut self.levels[0][slot];
                let mut batch = Vec::new();
                let mut keep = Vec::new();
                for e in entries.drain(..) {
                    if e.deadline == deadline {
                        batch.push(e);
                    } else {
                        // Same slot, later rotation: stays parked.
                        keep.push(e);
                    }
                }
                *entries = keep;
                if self.levels[0][slot].is_empty() {
                    self.occupied[0] &= !(1u64 << slot);
                }
                batch.sort_by_key(|e| e.seq);
                for e in &batch {
                    self.live.remove(&e.id);
                }
                return Some((deadline, batch.into_iter().map(|e| e.value).collect()));
            }

            // Cascade: advance to the start of the slot's window on
            // this level, then re-home the in-window entries into finer
            // levels. Entries in the slot that belong to a *later*
            // rotation stay put.
            let span = 1u64 << (SLOT_BITS * level as u32);
            let window_start =
                (deadline >> (SLOT_BITS * level as u32)) << (SLOT_BITS * level as u32);
            self.now = self.now.max(window_start);
            let entries = std::mem::take(&mut self.levels[level][slot]);
            for e in entries {
                if e.deadline < window_start + span {
                    self.cascades += 1;
                    self.place(e);
                } else {
                    self.levels[level][slot].push(e);
                }
            }
            if self.levels[level][slot].is_empty() {
                self.occupied[level] &= !(1u64 << slot);
            }
        }
    }
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// Checkpoints and stats
// ---------------------------------------------------------------------------

/// A referral URL harvested from an emitted record but not yet
/// classified — the unit of the checkpointed referral frontier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingUrl {
    /// Host whose record announced the URL.
    pub from: Ipv4,
    /// The announced `opc.tcp://…` URL, verbatim.
    pub url: String,
    /// Referral depth the URL would be followed at.
    pub depth: u32,
}

/// Everything needed to resume an aborted scan deterministically.
///
/// The checkpoint captures the scan at a *record boundary*: every
/// record emitted before the abort is final, everything admitted but
/// not yet emitted (`in_flight`) is discarded — fork clocks and all —
/// and re-probed from scratch on resume. Because record contents are a
/// pure function of `(host, port, seed, epoch)` and emission order is
/// the permutation-walk order, the stitched stream
/// `aborted-run records ++ resumed-run records` is byte-identical to an
/// uninterrupted run.
///
/// One deliberate exception: the campaign-wide certificate interner
/// ([`ua_crypto::CertStore`]) counts *work performed*, so certificates
/// captured by probes that were later discarded are sighted again on
/// re-probe. `certs.sightings` in the final summary is therefore
/// telemetry, not part of the byte-identity contract; every other
/// summary field (sweep stats, referral stats, host counts,
/// timestamps) stitches exactly.
///
/// Checkpoints are plain data — every field is public and printable —
/// so drivers can persist them however they like.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCheckpoint {
    /// Seed the scan was started with; resuming asserts it matches.
    pub seed: u64,
    /// The campaign epoch (µs): the frozen instant every probe forks
    /// its private clock from. Resume reconstructs it with
    /// [`VirtualClock::starting_at_micros`].
    pub epoch_micros: u64,
    /// `started_unix` the final summary must report.
    pub started_unix: i64,
    /// Index (into [`crate::probe::ScanConfig::effective_suites`]) of
    /// the suite phase the abort landed in; earlier phases are complete
    /// and resume skips them entirely.
    pub suite_cursor: usize,
    /// True when the current phase's sweep finished and only its
    /// referral levels remain.
    pub sweep_done: bool,
    /// First permutation-walk step the aborted run never examined.
    /// Resume re-walks the permutation and treats earlier steps as
    /// settled unless listed in `in_flight`.
    pub next_step: u64,
    /// Walk steps that were admitted but not emitted when the abort
    /// landed. Their probes are discarded wholesale and re-run on
    /// resume (they are already counted in `sweep_stats`).
    pub in_flight: Vec<u64>,
    /// Sweep counters covering every examined step (`< next_step`).
    pub sweep_stats: SweepStats,
    /// OPC UA speakers among emitted records so far.
    pub opcua_hosts: u64,
    /// Emitted records that failed the UACP hello.
    pub non_opcua_hosts: u64,
    /// Per-host probe time (µs) of *emitted* records only — discarded
    /// in-flight probes never charge the campaign clock.
    pub probe_micros: u64,
    /// Referral URLs harvested from emitted records, not yet followed.
    pub frontier: Vec<PendingUrl>,
    /// Referral-phase counters so far.
    pub referral_stats: ReferralStats,
    /// Connect-phase fault/retry counters over emitted records so far —
    /// resumed hostile sweeps stitch their [`crate::FaultStats`] exactly
    /// like the host counts.
    pub fault_stats: crate::pipeline::FaultStats,
    /// `(address, port)` pairs already probed via referral, sorted for
    /// reproducible printing.
    pub probed_referrals: Vec<(Ipv4, u16)>,
}

/// Telemetry from one event-loop engine run. Deliberately **not** part
/// of [`crate::ScanSummary`]: the summary must stay byte-identical
/// across engines, and these numbers describe the scheduler, not the
/// measurement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Targets admitted into the in-flight window.
    pub admitted: u64,
    /// Probes driven to completion (admitted minus aborted).
    pub completed: u64,
    /// Peak size of the admitted-but-unemitted window; by construction
    /// never exceeds [`crate::ScanConfig::max_in_flight`].
    pub in_flight_high_water: usize,
    /// Timers scheduled on the wheel.
    pub timers_scheduled: u64,
    /// Timers that fired.
    pub timers_fired: u64,
    /// Timers dropped by cancellation.
    pub timers_cancelled: u64,
    /// Entries that cascaded between wheel levels.
    pub wheel_cascades: u64,
    /// Virtual microseconds the engine's internal timeline covered.
    pub virtual_micros: u64,
}

// ---------------------------------------------------------------------------
// The event loop
// ---------------------------------------------------------------------------

/// One unit of admission: a target the walk classified as listening
/// (or a dead referral target that still owes a connect-time charge).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Job {
    /// Emission key: walk step for sweep jobs, level index for
    /// referral jobs. Must be strictly increasing per `run` call.
    pub ordinal: u64,
    pub addr: Ipv4,
    pub port: u16,
    pub via: DiscoveredVia,
    pub seed: u64,
    /// False for referral targets with no listener: resolved at
    /// admission with a single timed connect, like the threaded path.
    pub listening: bool,
}

/// How a `run` call ended.
pub(crate) enum EngineRun {
    /// The job iterator was exhausted and every record emitted.
    Complete,
    /// Cancellation observed; `unemitted` lists the ordinals that were
    /// admitted but never emitted, in admission order.
    Cancelled { unemitted: Vec<u64> },
}

/// A probe in flight: its private fork clock, network view, record
/// under construction, and position in the probe stack.
struct InFlight {
    ordinal: u64,
    addr: Ipv4,
    port: u16,
    seed: u64,
    clock: VirtualClock,
    start_micros: u64,
    net: Internet,
    record: ScanRecord,
    client: Option<UaClient<TcpStreamSim>>,
    stage: usize,
    /// Fork-elapsed µs already reflected in wheel scheduling.
    charged: u64,
}

/// The single-threaded scan engine. One instance drives both the sweep
/// and every referral level of a scan, so [`EngineStats`] covers the
/// whole call to [`crate::Scanner::scan_resumable`].
pub(crate) struct EventLoop<'a> {
    internet: &'a Internet,
    config: &'a ScanConfig,
    certs: &'a CertStore,
    epoch: &'a VirtualClock,
    /// Mirrors the wheel's tick counter onto virtual time: the wheel is
    /// "driven by" the campaign clock in the sense that one tick is one
    /// virtual microsecond past the epoch.
    engine_clock: VirtualClock,
    epoch_micros: u64,
    /// The suite whose phase the engine is currently driving; its stack
    /// and payload template are installed by [`EventLoop::set_suite`].
    suite: Arc<dyn ProtocolSuite>,
    stack: Vec<Box<dyn Probe>>,
    wheel: TimerWheel<usize>,
    slots: Vec<Option<InFlight>>,
    free: Vec<usize>,
    pending: VecDeque<u64>,
    /// Completion buffer keyed by admission sequence; records leave in
    /// cursor order, so the map's own order never shows.
    // ua-lint: allow(unordered-iteration) -- drained by sequence cursor, never iterated
    ready: HashMap<u64, (Option<ScanRecord>, u64)>,
    stats: EngineStats,
    cap: usize,
}

impl<'a> EventLoop<'a> {
    pub fn new(
        internet: &'a Internet,
        config: &'a ScanConfig,
        certs: &'a CertStore,
        epoch: &'a VirtualClock,
    ) -> Self {
        let suite: Arc<dyn ProtocolSuite> = Arc::new(OpcUaSuite::new());
        EventLoop {
            internet,
            config,
            certs,
            epoch,
            engine_clock: epoch.fork(),
            epoch_micros: epoch.now_micros(),
            stack: suite.stack(),
            suite,
            wheel: TimerWheel::new(),
            slots: Vec::new(),
            free: Vec::new(),
            pending: VecDeque::new(),
            // ua-lint: allow(unordered-iteration) -- drained by sequence cursor, never iterated
            ready: HashMap::new(),
            stats: EngineStats::default(),
            cap: config.effective_max_in_flight(),
        }
    }

    /// Installs the suite whose phase the next [`EventLoop::run`] calls
    /// drive: its stage ladder replaces the current one and its payload
    /// template goes onto every subsequently admitted record. Must only
    /// be called between runs (no probes in flight).
    pub fn set_suite(&mut self, suite: Arc<dyn ProtocolSuite>) {
        debug_assert!(
            self.pending.is_empty(),
            "suite change with probes in flight"
        );
        self.stack = suite.stack();
        self.suite = suite;
    }

    pub fn stats(&self) -> EngineStats {
        let mut stats = self.stats;
        stats.wheel_cascades = self.wheel.cascades();
        stats.virtual_micros = self.wheel.now();
        stats
    }

    /// Drives `jobs` to completion (or cancellation), calling
    /// `emit(ordinal, record, probe_micros)` strictly in ordinal order.
    /// `record` is `None` for dead referral targets. When `cancel` is
    /// `Some`, the token is polled between wheel firings.
    pub fn run(
        &mut self,
        jobs: &mut dyn Iterator<Item = Job>,
        cancel: Option<&CancelToken>,
        emit: &mut dyn FnMut(u64, Option<ScanRecord>, u64),
    ) -> EngineRun {
        let mut exhausted = false;
        loop {
            if let Some(token) = cancel {
                if token.is_cancelled() {
                    return EngineRun::Cancelled {
                        unemitted: self.abort(),
                    };
                }
            }
            while !exhausted && self.pending.len() < self.cap {
                match jobs.next() {
                    Some(job) => self.admit(job),
                    None => exhausted = true,
                }
            }
            self.flush(emit);
            if exhausted && self.pending.is_empty() {
                return EngineRun::Complete;
            }
            if let Some((now, batch)) = self.wheel.expire_next() {
                self.engine_clock.advance_to_micros(self.epoch_micros + now);
                self.stats.timers_fired += batch.len() as u64;
                for slot in batch {
                    self.run_stage(slot);
                }
            } else {
                // No timers armed: everything pending is resolved (the
                // next flush drains it) or admission still has input.
                debug_assert!(
                    !exhausted
                        || self
                            .pending
                            .front()
                            .is_none_or(|o| self.ready.contains_key(o)),
                    "event loop stalled with no timers and no ready frontier"
                );
            }
        }
    }

    /// Drops everything in flight. The fork clocks die with their
    /// probes, so none of their virtual time ever reaches the campaign
    /// clock — the invariant `week_epochs_strictly_advance` relies on.
    fn abort(&mut self) -> Vec<u64> {
        let unemitted: Vec<u64> = self.pending.drain(..).collect();
        self.stats.timers_cancelled += self.wheel.clear() as u64;
        self.slots.clear();
        self.free.clear();
        self.ready.clear();
        unemitted
    }

    fn admit(&mut self, job: Job) {
        self.stats.admitted += 1;
        self.pending.push_back(job.ordinal);
        self.stats.in_flight_high_water = self.stats.in_flight_high_water.max(self.pending.len());

        if !job.listening {
            // Dead referral target: the threaded path charges one timed
            // connect on a throwaway fork; replicate that exactly.
            let clock = self.epoch.fork();
            let start = clock.now_micros();
            let _ = self.internet.with_clock(clock.clone()).connect(
                self.config.scanner_address,
                job.addr,
                job.port,
            );
            let elapsed = clock.now_micros().saturating_sub(start);
            self.ready.insert(job.ordinal, (None, elapsed));
            self.stats.completed += 1;
            return;
        }

        let hint = self
            .internet
            .poll_connect(job.addr, job.port)
            .latency_hint_micros();
        let clock = self.epoch.fork();
        let net = self.internet.with_clock(clock.clone());
        let mut record = ScanRecord::for_target(
            job.addr,
            job.port,
            job.via,
            net.as_number(job.addr),
            clock.now_unix_seconds(),
        );
        record.payload = self.suite.payload();
        let flight = InFlight {
            ordinal: job.ordinal,
            addr: job.addr,
            port: job.port,
            seed: job.seed,
            start_micros: clock.now_micros(),
            clock,
            net,
            record,
            client: None,
            stage: 0,
            charged: 0,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some(flight);
                slot
            }
            None => {
                self.slots.push(Some(flight));
                self.slots.len() - 1
            }
        };
        self.wheel.insert(self.wheel.now() + hint.max(1), slot);
        self.stats.timers_scheduled += 1;
    }

    /// Runs one probe stage for the flight in `slot`, then either
    /// schedules the next stage (at a deadline offset by the virtual
    /// time this stage consumed on the flight's fork) or finalizes the
    /// record into the ready map.
    fn run_stage(&mut self, slot: usize) {
        let mut flight = match self.slots.get_mut(slot).and_then(Option::take) {
            Some(flight) => flight,
            // Slot was torn down by an abort racing a stale timer.
            None => return,
        };
        let mut ctx = ProbeContext::for_target(
            &flight.net,
            self.config,
            self.certs,
            flight.addr,
            flight.port,
            flight.seed,
        );
        ctx.suite = Arc::clone(&self.suite);
        ctx.client = flight.client.take();
        let outcome = self.stack[flight.stage].run(&mut ctx, &mut flight.record);
        flight.client = ctx.client.take();
        flight.stage += 1;

        let elapsed = flight
            .clock
            .now_micros()
            .saturating_sub(flight.start_micros);
        if outcome == ProbeOutcome::Stop || flight.stage >= self.stack.len() {
            // Added, not assigned: side-connection stages (vendor
            // fingerprinting) fold their traffic in via
            // `ScanRecord::account` as they run.
            if let Some(client) = &flight.client {
                flight.record.requests += client.requests_sent();
                let stats = client.stats();
                flight.record.tx_bytes += stats.tx_bytes;
                flight.record.rx_bytes += stats.rx_bytes;
            }
            self.stats.completed += 1;
            self.ready
                .insert(flight.ordinal, (Some(flight.record), elapsed));
            self.free.push(slot);
        } else {
            let delta = elapsed.saturating_sub(flight.charged);
            flight.charged = elapsed;
            let deadline = self.wheel.now() + delta.max(1);
            self.slots[slot] = Some(flight);
            self.wheel.insert(deadline, slot);
            self.stats.timers_scheduled += 1;
        }
    }

    /// Emits the in-order frontier: records leave strictly in admission
    /// order, which is the permutation-walk order — the whole
    /// byte-identity argument in one loop.
    fn flush(&mut self, emit: &mut dyn FnMut(u64, Option<ScanRecord>, u64)) {
        while let Some(&front) = self.pending.front() {
            match self.ready.remove(&front) {
                Some((record, micros)) => {
                    self.pending.pop_front();
                    emit(front, record, micros);
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_cancels_and_shares() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        // notch is a no-op without a budget.
        let t = CancelToken::new();
        for _ in 0..10 {
            t.notch();
        }
        assert!(!t.is_cancelled());
    }

    #[test]
    fn token_budget_cancels_after_n_notches() {
        let token = CancelToken::after_records(3);
        token.notch();
        assert!(!token.is_cancelled());
        token.notch();
        assert!(!token.is_cancelled());
        token.notch();
        assert!(token.is_cancelled());
    }

    #[test]
    fn guard_cancels_on_drop_unless_disarmed() {
        let token = CancelToken::new();
        {
            let _guard = token.guard();
        }
        assert!(token.is_cancelled());

        let token = CancelToken::new();
        {
            let guard = token.guard();
            let _ = guard.disarm();
        }
        assert!(!token.is_cancelled());
    }

    #[test]
    fn wheel_fires_in_deadline_order() {
        let mut wheel = TimerWheel::new();
        wheel.insert(50, "c");
        wheel.insert(10, "a");
        wheel.insert(30, "b");
        assert_eq!(wheel.len(), 3);
        assert_eq!(wheel.expire_next(), Some((10, vec!["a"])));
        assert_eq!(wheel.now(), 10);
        assert_eq!(wheel.expire_next(), Some((30, vec!["b"])));
        assert_eq!(wheel.expire_next(), Some((50, vec!["c"])));
        assert_eq!(wheel.now(), 50);
        assert!(wheel.is_empty());
        assert_eq!(wheel.expire_next(), None);
    }

    #[test]
    fn wheel_same_tick_fifo_across_levels() {
        let mut wheel = TimerWheel::new();
        // "first" goes in at level 1 (delta 100 ≥ 64 from tick 0);
        // after the wheel turns past 40, "second" lands at level 0 for
        // the same deadline. The batch must still come out in
        // insertion order, which forces a cascade of "first".
        wheel.insert(100, "first");
        wheel.insert(40, "warmup");
        assert_eq!(wheel.expire_next(), Some((40, vec!["warmup"])));
        wheel.insert(100, "second");
        assert_eq!(wheel.expire_next(), Some((100, vec!["first", "second"])));
        assert!(wheel.cascades() > 0);
    }

    #[test]
    fn wheel_cancel_removes_without_reordering() {
        let mut wheel = TimerWheel::new();
        let _a = wheel.insert(10, "a");
        let b = wheel.insert(20, "b");
        let _c = wheel.insert(30, "c");
        assert!(wheel.cancel(b));
        assert!(!wheel.cancel(b), "second cancel is a no-op");
        assert_eq!(wheel.len(), 2);
        assert_eq!(wheel.expire_next(), Some((10, vec!["a"])));
        assert_eq!(wheel.expire_next(), Some((30, vec!["c"])));
        assert_eq!(wheel.expire_next(), None);
    }

    #[test]
    fn wheel_far_future_cascades_down() {
        let mut wheel = TimerWheel::new();
        wheel.insert(1_000_000_000, "far");
        wheel.insert(5, "near");
        assert_eq!(wheel.expire_next(), Some((5, vec!["near"])));
        assert_eq!(wheel.expire_next(), Some((1_000_000_000, vec!["far"])));
        // 10^9 sits four levels up (64^4 ≈ 1.6·10^7 ≤ 10^9 < 64^5):
        // reaching it takes at least one cascade per level crossed.
        assert!(wheel.cascades() >= 3, "cascades: {}", wheel.cascades());
        assert_eq!(wheel.now(), 1_000_000_000);
    }

    #[test]
    fn wheel_clamps_past_deadlines_to_now() {
        let mut wheel = TimerWheel::new();
        wheel.insert(100, "late");
        assert_eq!(wheel.expire_next(), Some((100, vec!["late"])));
        wheel.insert(10, "stale");
        // Clamped to now=100, fires immediately, time never rewinds.
        assert_eq!(wheel.expire_next(), Some((100, vec!["stale"])));
        assert_eq!(wheel.now(), 100);
    }

    #[test]
    fn wheel_clear_reports_dropped() {
        let mut wheel = TimerWheel::new();
        wheel.insert(10, 1);
        wheel.insert(20, 2);
        let id = wheel.insert(30, 3);
        wheel.cancel(id);
        assert_eq!(wheel.clear(), 2);
        assert!(wheel.is_empty());
        assert_eq!(wheel.expire_next(), None);
    }

    #[test]
    fn wheel_same_slot_different_rotation_stays_parked() {
        let mut wheel = TimerWheel::new();
        // 69 parks at level 1 and later cascades into level-0 slot 5 —
        // the slot 5 itself occupied one rotation earlier. The cascade
        // must not disturb already-fired history, and each deadline
        // fires exactly once.
        wheel.insert(5, "near");
        wheel.insert(64 + 5, "far");
        assert_eq!(wheel.expire_next(), Some((5, vec!["near"])));
        assert_eq!(wheel.expire_next(), Some((69, vec!["far"])));
    }
}
