//! Longitudinal campaign driver: N weekly sweeps over an evolving
//! universe, on one strictly advancing clock and one shared
//! certificate interner.
//!
//! The paper's core contribution is *longitudinal*: weekly
//! internet-wide campaigns over seven months expose IP churn,
//! certificate turnover, and (non-)patching behavior (§4, §6). A
//! [`Campaign`] replays that cadence against the simulated Internet:
//!
//! * **Week epochs are pinned.** Before each weekly sweep the shared
//!   [`netsim::VirtualClock`] is advanced to `start + week ×
//!   week_seconds`. The clock only ever moves forward
//!   ([`netsim::VirtualClock::advance_to_micros`]), so every fork taken
//!   in week *k+1* strictly follows everything week *k* produced —
//!   campaigns can never collapse to zero width, no matter how little
//!   virtual time a sweep consumes.
//! * **Evolution runs between campaigns.** [`Campaign::run_week`] hands
//!   the week index to a caller closure after the jump and before the
//!   sweep; `population::evolution` plugs in there, so churned hosts
//!   are live before the first SYN of the new week.
//! * **Certificates intern once per study.** All weekly sweeps share
//!   one [`CertStore`]: a certificate that survives the week — the
//!   common case, and the identity anchor of the cross-week host
//!   matching — is parsed, thumbprinted, and verified exactly once for
//!   the whole study. `summary.certs` therefore reports *cumulative*
//!   counters; the hit rate climbs week over week.
//!
//! Determinism: each week scans with a seed derived from `(campaign
//! seed, week)`, population evolution is a pure function of `(seed,
//! week)`, and the per-week epoch jump lands on the same instant
//! regardless of how long the previous sweep took — so a full
//! multi-campaign run is byte-identical per seed at any
//! [`crate::ScanConfig::workers`] count.

use crate::pipeline::{ScanOutcome, ScanSummary, Scanner};
use crate::record::ScanRecord;
use crate::sched::{CancelToken, SweepCheckpoint};
use netsim::Cidr;
use ua_crypto::{CertStore, CertStoreStats};

/// Cadence configuration of a longitudinal campaign.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Virtual seconds between weekly campaign epochs. Defaults to one
    /// week; every campaign must finish within it.
    pub week_seconds: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            week_seconds: 7 * 86_400,
        }
    }
}

/// One weekly campaign's output.
#[derive(Debug, Clone)]
pub struct WeeklyScan {
    /// Week index, starting at 0.
    pub week: u32,
    /// Campaign accounting (note: `summary.certs` counts cumulatively
    /// across the whole study — the interner is shared).
    pub summary: ScanSummary,
    /// The week's records, in discovery order.
    pub records: Vec<ScanRecord>,
}

/// How a resumable weekly campaign ended.
// The size gap vs the boxed checkpoint is fine: the outcome is
// destructured immediately by the caller, never stored in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum WeekOutcome {
    /// The week's sweep ran to completion.
    Complete(WeeklyScan),
    /// Cancellation was observed mid-week; pass the checkpoint to
    /// [`Campaign::resume_week`] to finish the week. The shared
    /// campaign clock is untouched — an aborted week consumed no
    /// campaign time.
    Aborted(Box<WeekCheckpoint>),
}

/// A week frozen mid-sweep: the records emitted so far plus the scan
/// engine's [`SweepCheckpoint`]. Resuming prepends the partial records,
/// so a stitched [`WeeklyScan`] is byte-identical to an uninterrupted
/// one (modulo the cert-interner `sightings` telemetry — see
/// [`SweepCheckpoint`]).
#[derive(Debug)]
pub struct WeekCheckpoint {
    /// Week index the abort landed in.
    pub week: u32,
    /// Records emitted before the abort, in discovery order.
    pub records: Vec<ScanRecord>,
    /// The scan engine's resume point.
    pub sweep: SweepCheckpoint,
}

/// Drives weekly campaigns against one (evolving) universe.
pub struct Campaign {
    scanner: Scanner,
    config: CampaignConfig,
    certs: CertStore,
    epoch_micros: u64,
    weeks_run: u32,
}

impl Campaign {
    /// A campaign driver with the default weekly cadence. The current
    /// virtual time becomes week 0's epoch.
    pub fn new(scanner: Scanner) -> Self {
        Self::with_config(scanner, CampaignConfig::default())
    }

    /// A campaign driver with an explicit cadence.
    pub fn with_config(scanner: Scanner, config: CampaignConfig) -> Self {
        let epoch_micros = scanner.internet().clock().now_micros();
        Campaign {
            scanner,
            config,
            certs: CertStore::new(),
            epoch_micros,
            weeks_run: 0,
        }
    }

    /// The underlying scanner.
    pub fn scanner(&self) -> &Scanner {
        &self.scanner
    }

    /// Weekly campaigns completed so far.
    pub fn weeks_run(&self) -> u32 {
        self.weeks_run
    }

    /// Cumulative certificate-interning counters across all weeks.
    pub fn cert_stats(&self) -> CertStoreStats {
        self.certs.stats()
    }

    /// Runs the next weekly campaign: pins the clock to the week's
    /// epoch, calls `evolve` with the week index (0 for the initial
    /// campaign — evolution conventionally skips it), then sweeps
    /// `universe` with a week-derived seed.
    ///
    /// Panics if the previous campaign overran the week — a study whose
    /// sweeps are slower than its cadence has no well-defined weekly
    /// series.
    pub fn run_week<F>(&mut self, universe: &[Cidr], seed: u64, evolve: F) -> WeeklyScan
    where
        F: FnOnce(u32),
    {
        let week = self.weeks_run;
        let target = self.epoch_micros + u64::from(week) * self.config.week_seconds * 1_000_000;
        let clock = self.scanner.internet().clock();
        assert!(
            week == 0 || clock.now_micros() < target,
            "week {week} campaign would start late: the previous sweep overran the \
             {}s cadence",
            self.config.week_seconds
        );
        clock.advance_to_micros(target);
        evolve(week);
        // A fresh permutation per week (the paper re-randomized each
        // campaign), still a pure function of (seed, week).
        let week_seed = seed ^ u64::from(week).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut records = Vec::new();
        let summary = self
            .scanner
            .scan_with_certs(universe, week_seed, &self.certs, |r| records.push(r));
        self.weeks_run += 1;
        WeeklyScan {
            week,
            summary,
            records,
        }
    }

    /// [`Self::run_week`] on the event-driven engine with a
    /// cancellation hook: the week can be aborted at any record
    /// boundary and finished later with [`Self::resume_week`].
    ///
    /// Epoch pinning, evolution, and the week-derived seed are
    /// identical to [`Self::run_week`]; an abort happens *after* both
    /// the epoch jump and `evolve`, so the world is already in its
    /// week-`k` state and must not be evolved again on resume.
    /// `weeks_run` only advances when the week completes.
    pub fn run_week_resumable<F>(
        &mut self,
        universe: &[Cidr],
        seed: u64,
        evolve: F,
        cancel: &CancelToken,
    ) -> WeekOutcome
    where
        F: FnOnce(u32),
    {
        let week = self.weeks_run;
        let target = self.epoch_micros + u64::from(week) * self.config.week_seconds * 1_000_000;
        let clock = self.scanner.internet().clock();
        assert!(
            week == 0 || clock.now_micros() < target,
            "week {week} campaign would start late: the previous sweep overran the \
             {}s cadence",
            self.config.week_seconds
        );
        clock.advance_to_micros(target);
        evolve(week);
        let week_seed = seed ^ u64::from(week).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.finish_week(universe, week, week_seed, Vec::new(), None, cancel)
    }

    /// Continues a week aborted by [`Self::run_week_resumable`] (or a
    /// previous `resume_week` — aborts can nest). `seed` is the same
    /// campaign seed the week was started with. Does *not* re-evolve
    /// the universe and does not re-pin the epoch: the checkpoint
    /// carries the exact epoch instant, and the shared clock has not
    /// moved since the abort.
    pub fn resume_week(
        &mut self,
        universe: &[Cidr],
        seed: u64,
        checkpoint: WeekCheckpoint,
        cancel: &CancelToken,
    ) -> WeekOutcome {
        let week = checkpoint.week;
        assert_eq!(
            week, self.weeks_run,
            "checkpoint is for week {week} but the campaign is at week {}",
            self.weeks_run
        );
        let week_seed = seed ^ u64::from(week).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.finish_week(
            universe,
            week,
            week_seed,
            checkpoint.records,
            Some(checkpoint.sweep),
            cancel,
        )
    }

    /// Shared tail of the resumable paths: runs (or continues) the
    /// event-loop scan, stitching `records` in front of whatever it
    /// emits.
    fn finish_week(
        &mut self,
        universe: &[Cidr],
        week: u32,
        week_seed: u64,
        mut records: Vec<ScanRecord>,
        resume: Option<SweepCheckpoint>,
        cancel: &CancelToken,
    ) -> WeekOutcome {
        let outcome =
            self.scanner
                .scan_resumable(universe, week_seed, &self.certs, resume, cancel, |r| {
                    records.push(r)
                });
        match outcome {
            ScanOutcome::Complete { summary, .. } => {
                self.weeks_run += 1;
                WeekOutcome::Complete(WeeklyScan {
                    week,
                    summary,
                    records,
                })
            }
            ScanOutcome::Aborted { checkpoint } => WeekOutcome::Aborted(Box::new(WeekCheckpoint {
                week,
                records,
                sweep: *checkpoint,
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::ScanConfig;
    use netsim::{Blocklist, Internet, Ipv4, VirtualClock};
    use std::sync::Arc;
    use ua_addrspace::SpaceBuilder;
    use ua_server::{ServerConfig, ServerCore, UaServerService};

    fn tiny_world(addrs: &[Ipv4]) -> Internet {
        let net = Internet::new(VirtualClock::starting_at(1_581_206_400));
        for (i, &addr) in addrs.iter().enumerate() {
            let url = format!("opc.tcp://{addr}:4840/");
            let core = ServerCore::new(
                ServerConfig::wide_open(format!("urn:test:{i}"), url),
                SpaceBuilder::new(&["urn:test"], "1.0.0").finish(),
                i as u64,
            );
            net.add_host(addr, 10_000);
            net.bind(addr, 4840, Arc::new(UaServerService::new(core, 5)));
        }
        net
    }

    fn campaign(net: Internet, workers: usize) -> Campaign {
        let config = ScanConfig {
            workers,
            ..ScanConfig::default()
        };
        Campaign::new(Scanner::new(net, Blocklist::new(), config))
    }

    /// Regression test for the churn-agnostic clock: weekly epochs must
    /// strictly advance, so week k+1 timestamps always follow week k —
    /// no zero-width campaigns even though a tiny sweep consumes far
    /// less than a week of virtual time.
    #[test]
    fn week_epochs_strictly_advance() {
        let addrs = [Ipv4::new(10, 60, 0, 1), Ipv4::new(10, 60, 0, 2)];
        let universe: Cidr = "10.60.0.0/27".parse().unwrap();
        let mut c = campaign(tiny_world(&addrs), 1);
        let start = c.scanner().internet().clock().now_unix_seconds();
        let mut prev: Option<ScanSummary> = None;
        for week in 0..4 {
            let scan = c.run_week(&[universe], 42, |_| {});
            assert_eq!(scan.week, week);
            // The campaign starts exactly on its weekly epoch…
            assert_eq!(
                scan.summary.started_unix,
                start + i64::from(week) * 7 * 86_400,
            );
            // …and campaigns have width: probing takes virtual time.
            assert!(scan.summary.finished_unix > scan.summary.started_unix);
            if let Some(p) = prev {
                // Week k+1 strictly follows week k, fork epochs included
                // (discovered_unix comes from forks of the new epoch).
                assert!(scan.summary.started_unix > p.finished_unix);
                for r in &scan.records {
                    assert!(r.discovered_unix > p.finished_unix);
                }
            }
            prev = Some(scan.summary);
        }
        assert_eq!(c.weeks_run(), 4);
    }

    #[test]
    fn weekly_outputs_identical_across_worker_counts() {
        let addrs = [
            Ipv4::new(10, 61, 0, 3),
            Ipv4::new(10, 61, 0, 40),
            Ipv4::new(10, 61, 0, 200),
        ];
        let universe: Cidr = "10.61.0.0/24".parse().unwrap();
        let run = |workers: usize| {
            let mut c = campaign(tiny_world(&addrs), workers);
            (0..3)
                .map(|_| c.run_week(&[universe], 7, |_| {}))
                .collect::<Vec<_>>()
        };
        let one = run(1);
        let four = run(4);
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.summary, b.summary);
            assert_eq!(a.records, b.records);
        }
    }

    #[test]
    fn cert_store_is_shared_across_weeks() {
        // wide-open servers serve no certificates; this asserts the
        // cumulative-counter plumbing rather than hit rates.
        let addrs = [Ipv4::new(10, 62, 0, 1)];
        let universe: Cidr = "10.62.0.0/28".parse().unwrap();
        let mut c = campaign(tiny_world(&addrs), 1);
        let w0 = c.run_week(&[universe], 1, |_| {});
        let w1 = c.run_week(&[universe], 1, |_| {});
        assert_eq!(w0.summary.certs, c.cert_stats());
        assert_eq!(w1.summary.certs, c.cert_stats());
        // Evolve callback sees the right week.
        let mut seen = Vec::new();
        c.run_week(&[universe], 1, |w| seen.push(w));
        assert_eq!(seen, vec![2]);
    }

    #[test]
    #[should_panic(expected = "overran")]
    fn overrunning_the_cadence_panics() {
        let addrs = [Ipv4::new(10, 63, 0, 1)];
        let universe: Cidr = "10.63.0.0/28".parse().unwrap();
        let mut c = Campaign::with_config(
            campaign(tiny_world(&addrs), 1).scanner.clone(),
            CampaignConfig { week_seconds: 1 },
        );
        c.run_week(&[universe], 1, |_| {});
        // The sweep consumed more than a second of virtual time; a
        // 1-second cadence cannot hold.
        c.run_week(&[universe], 1, |_| {});
    }
}
