//! # scanner
//!
//! The Internet-wide OPC UA measurement pipeline (§4 of the paper):
//!
//! * [`record`] — [`ScanRecord`]/[`EndpointSnapshot`], the per-host data
//!   every downstream consumer (notably the `assessment` crate) works on;
//! * [`probe`] — the composable [`Probe`] stage API: UACP hello →
//!   discovery (GetEndpoints + FindServers) → anonymous session with
//!   budgeted traversal;
//! * [`suite`] — the protocol layer: a [`ProtocolSuite`] bundles the
//!   default port, the probe-stage ladder, the connect-error taxonomy,
//!   and the typed [`ProtocolPayload`] for one protocol;
//!   [`SuiteRegistry`] maps ports to suites so one campaign sweeps
//!   several protocols over the same engines;
//! * [`url`] — `opc.tcp://host:port/path` parsing and normalization,
//!   the canonical form referral deduplication relies on;
//! * [`pipeline`] — the campaign driver: zmap-style sweep streamed
//!   straight into the probe stack, a deterministic breadth-first
//!   referral queue re-probing FindServers-announced `host:port`
//!   targets after the sweep, with records flowing through a bounded
//!   channel ([`Scanner::scan_stream`]) so memory stays constant at
//!   Internet scale;
//! * [`sched`] — the event-driven scan core: a hierarchical
//!   [`TimerWheel`] multiplexing per-host probe state machines on one
//!   thread, [`CancelToken`] cooperative cancellation, and
//!   [`SweepCheckpoint`] abort/resume — byte-identical to the threaded
//!   engine per seed at any in-flight cap;
//! * [`campaign`] — the longitudinal driver: N weekly sweeps on one
//!   strictly advancing clock, an evolve hook between campaigns, and a
//!   study-wide shared [`CertStore`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod pipeline;
pub mod probe;
pub mod record;
pub mod sched;
pub mod suite;
pub mod url;

pub use campaign::{Campaign, CampaignConfig, WeekCheckpoint, WeekOutcome, WeeklyScan};
pub use pipeline::{FaultStats, ReferralStats, ScanOutcome, ScanStream, ScanSummary, Scanner};
// Per-stage probe types (UacpProbe, EndpointsProbe, …) deliberately stay
// behind the `probe::` path: suites are the unit callers compose with;
// individual stages are an implementation detail of a suite's ladder.
pub use probe::{
    default_stack, ConfigError, Probe, ProbeContext, ProbeOutcome, RetryPolicy, ScanConfig,
    ScanConfigBuilder, ScanEngine,
};
pub use record::{
    DiscoveredVia, EndpointSnapshot, HostOutcome, OpcUaPayload, ProtocolPayload, ScanRecord,
    SessionOutcome, TraversalSummary, UatTlsPayload,
};
pub use sched::{
    CancelGuard, CancelToken, EngineStats, PendingUrl, SweepCheckpoint, TimerId, TimerWheel,
};
pub use suite::{
    classify_connect_error, OpcUaSuite, ProtocolSuite, SuiteRegistry, UatTlsSuite,
    VendorFingerprintProbe, DEFAULT_UATLS_PORT,
};
pub use ua_crypto::{CertStore, CertStoreStats, ParsedCert, Thumbprint};
pub use url::{OpcUrl, UrlError, UrlHost, DEFAULT_OPCUA_PORT};
