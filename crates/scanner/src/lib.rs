//! # scanner
//!
//! The Internet-wide OPC UA measurement pipeline (§4 of the paper):
//!
//! * [`record`] — [`ScanRecord`]/[`EndpointSnapshot`], the per-host data
//!   every downstream consumer (notably the `assessment` crate) works on;
//! * [`probe`] — the composable [`Probe`] stage API: UACP hello →
//!   discovery (GetEndpoints + FindServers) → anonymous session with
//!   budgeted traversal;
//! * [`pipeline`] — the campaign driver: zmap-style sweep streamed
//!   straight into the probe stack, with records flowing through a
//!   bounded channel ([`Scanner::scan_stream`]) so memory stays constant
//!   at Internet scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pipeline;
pub mod probe;
pub mod record;

pub use pipeline::{ScanStream, ScanSummary, Scanner};
pub use probe::{
    classify_session_error, default_stack, discovery_stack, DiscoveryProbe, Probe, ProbeContext,
    ProbeOutcome, ScanConfig, SessionProbe, UacpProbe,
};
pub use record::{EndpointSnapshot, ScanRecord, SessionOutcome, TraversalSummary};
