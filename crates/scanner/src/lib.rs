//! # scanner
//!
//! The Internet-wide OPC UA measurement pipeline (§4 of the paper):
//!
//! * [`record`] — [`ScanRecord`]/[`EndpointSnapshot`], the per-host data
//!   every downstream consumer (notably the `assessment` crate) works on;
//! * [`probe`] — the composable [`Probe`] stage API: UACP hello →
//!   discovery (GetEndpoints + FindServers) → anonymous session with
//!   budgeted traversal;
//! * [`url`] — `opc.tcp://host:port/path` parsing and normalization,
//!   the canonical form referral deduplication relies on;
//! * [`pipeline`] — the campaign driver: zmap-style sweep streamed
//!   straight into the probe stack, a deterministic breadth-first
//!   referral queue re-probing FindServers-announced `host:port`
//!   targets after the sweep, with records flowing through a bounded
//!   channel ([`Scanner::scan_stream`]) so memory stays constant at
//!   Internet scale;
//! * [`sched`] — the event-driven scan core: a hierarchical
//!   [`TimerWheel`] multiplexing per-host probe state machines on one
//!   thread, [`CancelToken`] cooperative cancellation, and
//!   [`SweepCheckpoint`] abort/resume — byte-identical to the threaded
//!   engine per seed at any in-flight cap;
//! * [`campaign`] — the longitudinal driver: N weekly sweeps on one
//!   strictly advancing clock, an evolve hook between campaigns, and a
//!   study-wide shared [`CertStore`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod pipeline;
pub mod probe;
pub mod record;
pub mod sched;
pub mod url;

pub use campaign::{Campaign, CampaignConfig, WeekCheckpoint, WeekOutcome, WeeklyScan};
pub use pipeline::{FaultStats, ReferralStats, ScanOutcome, ScanStream, ScanSummary, Scanner};
pub use probe::{
    classify_session_error, default_stack, discovery_stack, merge_find_servers, DiscoveryProbe,
    EndpointsProbe, FindServersProbe, Probe, ProbeContext, ProbeOutcome, RetryPolicy, ScanConfig,
    ScanEngine, SessionProbe, UacpProbe,
};
pub use record::{
    DiscoveredVia, EndpointSnapshot, HostOutcome, ScanRecord, SessionOutcome, TraversalSummary,
};
pub use sched::{
    CancelGuard, CancelToken, EngineStats, PendingUrl, SweepCheckpoint, TimerId, TimerWheel,
};
pub use ua_crypto::{CertStore, CertStoreStats, ParsedCert, Thumbprint};
pub use url::{OpcUrl, UrlError, UrlHost, DEFAULT_OPCUA_PORT};
