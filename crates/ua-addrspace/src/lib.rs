//! # ua-addrspace
//!
//! The OPC UA address space: a store of typed, cross-referenced nodes
//! with per-user access control (OPC 10000-3).
//!
//! The paper's §5.4 measures exactly this surface: which fraction of
//! nodes an *anonymous* user can read, write, and execute (Figure 7), and
//! which namespaces a server registers (used to classify systems as
//! production or test). This crate provides:
//!
//! * [`node::Node`] — node records with class, value, access levels;
//! * [`space::AddressSpace`] — the store, with the standard namespace-0
//!   skeleton (Root/Objects/Server incl. `SoftwareVersion`), browsing,
//!   attribute reads, writes, and method calls, all user-aware;
//! * [`builder`] — convenience construction of industrial object trees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod ids;
pub mod node;
pub mod space;

pub use builder::SpaceBuilder;
pub use node::{Node, NodeAccess, Reference, UserClass};
pub use space::{AddressSpace, BrowseOutcome};
