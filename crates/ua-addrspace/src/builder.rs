//! Fluent construction of industrial address spaces.
//!
//! The population generator uses this to build realistic device models:
//! folders per subsystem, process variables (`m3InflowPerHour`,
//! `rSetFillLevel`, …), and maintenance methods (`AddEndpoint`, …).

use crate::ids;
use crate::node::{Node, NodeAccess};
use crate::space::AddressSpace;
use ua_types::{NodeId, QualifiedName, Variant};

/// Builds an [`AddressSpace`] incrementally.
pub struct SpaceBuilder {
    space: AddressSpace,
    namespace: u16,
}

impl SpaceBuilder {
    /// Starts from the standard skeleton with `extra_namespaces`; new
    /// nodes are created in namespace index 1 (the first extra
    /// namespace).
    pub fn new(extra_namespaces: &[&str], software_version: &str) -> Self {
        assert!(
            !extra_namespaces.is_empty(),
            "builder needs at least one application namespace"
        );
        SpaceBuilder {
            space: AddressSpace::new(extra_namespaces, software_version),
            namespace: 1,
        }
    }

    /// Switches the namespace index for subsequently added nodes.
    pub fn in_namespace(mut self, index: u16) -> Self {
        self.namespace = index;
        self
    }

    /// Adds a folder under `parent` (or Objects when `None`), returning
    /// its id.
    pub fn folder(&mut self, parent: Option<&NodeId>, name: &str) -> NodeId {
        let id = NodeId::string(self.namespace, name);
        self.space.insert(Node::object(
            id.clone(),
            QualifiedName::new(self.namespace, name),
            NodeId::numeric(0, ids::TYPE_FOLDER),
        ));
        let parent = parent
            .cloned()
            .unwrap_or_else(|| NodeId::numeric(0, ids::OBJECTS_FOLDER));
        self.space
            .add_reference(&parent, ids::REF_ORGANIZES, id.clone());
        id
    }

    /// Adds a variable under `parent`.
    pub fn variable(
        &mut self,
        parent: &NodeId,
        name: &str,
        value: Variant,
        access: NodeAccess,
    ) -> NodeId {
        let id = NodeId::string(self.namespace, name);
        self.space.insert(Node::variable(
            id.clone(),
            QualifiedName::new(self.namespace, name),
            value,
            access,
        ));
        self.space
            .add_reference(parent, ids::REF_HAS_COMPONENT, id.clone());
        id
    }

    /// Adds a method under `parent`.
    pub fn method(&mut self, parent: &NodeId, name: &str, anonymous_executable: bool) -> NodeId {
        let id = NodeId::string(self.namespace, name);
        self.space.insert(Node::method(
            id.clone(),
            QualifiedName::new(self.namespace, name),
            anonymous_executable,
        ));
        self.space
            .add_reference(parent, ids::REF_HAS_COMPONENT, id.clone());
        id
    }

    /// Finishes building.
    pub fn finish(self) -> AddressSpace {
        self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::UserClass;
    use ua_types::{AttributeId, StatusCode};

    #[test]
    fn builds_nested_structure() {
        let mut b = SpaceBuilder::new(&["urn:waterworks:plant1"], "3.4.1");
        let plant = b.folder(None, "Plant");
        let pumps = b.folder(Some(&plant), "Pumps");
        b.variable(
            &pumps,
            "m3InflowPerHour",
            Variant::Double(42.0),
            NodeAccess::read_only(),
        );
        b.variable(
            &pumps,
            "rSetFillLevel",
            Variant::Float(80.0),
            NodeAccess::read_write_all(),
        );
        b.method(&pumps, "FlushPipes", false);
        let space = b.finish();

        // Objects -> Server + Plant.
        let objects = space.browse(&NodeId::numeric(0, ids::OBJECTS_FOLDER));
        assert_eq!(objects.references.len(), 2);
        let pumps_out = space.browse(&NodeId::string(1, "Pumps"));
        assert_eq!(pumps_out.references.len(), 3);
        // Anonymous cannot execute FlushPipes.
        assert_eq!(
            space.call_method(&NodeId::string(1, "FlushPipes"), &UserClass::Anonymous),
            StatusCode::BAD_NOT_EXECUTABLE
        );
        // NamespaceArray has 2 entries.
        let dv = space.read_attribute(
            &NodeId::numeric(0, ids::SERVER_NAMESPACE_ARRAY),
            AttributeId::Value,
            &UserClass::Anonymous,
        );
        match dv.value.unwrap() {
            Variant::Array(a) => assert_eq!(a.len(), 2),
            _ => panic!("expected array"),
        }
    }

    #[test]
    #[should_panic]
    fn requires_namespace() {
        SpaceBuilder::new(&[], "1.0");
    }
}
