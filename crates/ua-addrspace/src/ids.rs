//! Well-known numeric node ids of the standard namespace (OPC 10000-5
//! / 10000-6 Annex) used by the server skeleton and the scanner.

/// RootFolder.
pub const ROOT_FOLDER: u32 = 84;
/// ObjectsFolder — the traversal entry point the scanner uses.
pub const OBJECTS_FOLDER: u32 = 85;
/// TypesFolder.
pub const TYPES_FOLDER: u32 = 86;
/// ViewsFolder.
pub const VIEWS_FOLDER: u32 = 87;
/// Server object.
pub const SERVER: u32 = 2253;
/// Server_NamespaceArray — read to classify systems (§5.4).
pub const SERVER_NAMESPACE_ARRAY: u32 = 2255;
/// Server_ServerStatus.
pub const SERVER_STATUS: u32 = 2256;
/// Server_ServerStatus_BuildInfo.
pub const SERVER_BUILD_INFO: u32 = 2260;
/// Server_ServerStatus_BuildInfo_SoftwareVersion — the field the paper
/// watches for software updates across weekly scans (§5.5).
pub const SERVER_SOFTWARE_VERSION: u32 = 2264;
/// Server_GetMonitoredItems method (an example of a standard method).
pub const SERVER_GET_MONITORED_ITEMS: u32 = 11492;

/// Reference type: Organizes.
pub const REF_ORGANIZES: u32 = 35;
/// Reference type: HasTypeDefinition.
pub const REF_HAS_TYPE_DEFINITION: u32 = 40;
/// Reference type: HasProperty.
pub const REF_HAS_PROPERTY: u32 = 46;
/// Reference type: HasComponent.
pub const REF_HAS_COMPONENT: u32 = 47;

/// Type definition: FolderType.
pub const TYPE_FOLDER: u32 = 61;
/// Type definition: BaseDataVariableType.
pub const TYPE_BASE_DATA_VARIABLE: u32 = 63;
/// Type definition: PropertyType.
pub const TYPE_PROPERTY: u32 = 68;

/// The standard namespace URI (index 0 on every server).
pub const NS0_URI: &str = "http://opcfoundation.org/UA/";
