//! The address-space store: browsing, reads, writes, calls — all
//! user-aware.

use crate::ids;
use crate::node::{Node, NodeAccess, Reference, UserClass};
use std::collections::HashMap;
use ua_types::{AttributeId, DataValue, NodeClass, NodeId, QualifiedName, StatusCode, Variant};

/// Result of browsing one node.
#[derive(Debug, Clone, PartialEq)]
pub struct BrowseOutcome {
    /// Status (e.g. `BAD_NODE_ID_UNKNOWN`).
    pub status: StatusCode,
    /// References from the node, in insertion order.
    pub references: Vec<Reference>,
}

/// An OPC UA address space.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    namespaces: Vec<String>,
    nodes: HashMap<NodeId, Node>,
    insertion_order: Vec<NodeId>,
}

impl AddressSpace {
    /// Creates a space with the standard skeleton: Root, Objects, Types,
    /// Views, the Server object with `NamespaceArray` and
    /// `SoftwareVersion`, plus the given additional namespaces.
    pub fn new(extra_namespaces: &[&str], software_version: &str) -> Self {
        let mut namespaces = vec![ids::NS0_URI.to_string()];
        namespaces.extend(extra_namespaces.iter().map(|s| s.to_string()));

        let mut space = AddressSpace {
            namespaces: namespaces.clone(),
            nodes: HashMap::new(),
            insertion_order: Vec::new(),
        };

        let folder_type = NodeId::numeric(0, ids::TYPE_FOLDER);
        space.insert(Node::object(
            NodeId::numeric(0, ids::ROOT_FOLDER),
            QualifiedName::new(0, "Root"),
            folder_type.clone(),
        ));
        space.insert(Node::object(
            NodeId::numeric(0, ids::OBJECTS_FOLDER),
            QualifiedName::new(0, "Objects"),
            folder_type.clone(),
        ));
        space.insert(Node::object(
            NodeId::numeric(0, ids::TYPES_FOLDER),
            QualifiedName::new(0, "Types"),
            folder_type.clone(),
        ));
        space.insert(Node::object(
            NodeId::numeric(0, ids::VIEWS_FOLDER),
            QualifiedName::new(0, "Views"),
            folder_type,
        ));
        let root = NodeId::numeric(0, ids::ROOT_FOLDER);
        space.add_reference(
            &root,
            ids::REF_ORGANIZES,
            NodeId::numeric(0, ids::OBJECTS_FOLDER),
        );
        space.add_reference(
            &root,
            ids::REF_ORGANIZES,
            NodeId::numeric(0, ids::TYPES_FOLDER),
        );
        space.add_reference(
            &root,
            ids::REF_ORGANIZES,
            NodeId::numeric(0, ids::VIEWS_FOLDER),
        );

        // Server object with NamespaceArray and SoftwareVersion.
        space.insert(Node::object(
            NodeId::numeric(0, ids::SERVER),
            QualifiedName::new(0, "Server"),
            NodeId::NULL,
        ));
        space.add_reference(
            &NodeId::numeric(0, ids::OBJECTS_FOLDER),
            ids::REF_ORGANIZES,
            NodeId::numeric(0, ids::SERVER),
        );
        let ns_array = Variant::Array(
            namespaces
                .iter()
                .map(|n| Variant::String(Some(n.clone())))
                .collect(),
        );
        space.insert(Node::variable(
            NodeId::numeric(0, ids::SERVER_NAMESPACE_ARRAY),
            QualifiedName::new(0, "NamespaceArray"),
            ns_array,
            NodeAccess::read_only(),
        ));
        space.add_reference(
            &NodeId::numeric(0, ids::SERVER),
            ids::REF_HAS_PROPERTY,
            NodeId::numeric(0, ids::SERVER_NAMESPACE_ARRAY),
        );
        space.insert(Node::object(
            NodeId::numeric(0, ids::SERVER_STATUS),
            QualifiedName::new(0, "ServerStatus"),
            NodeId::NULL,
        ));
        space.add_reference(
            &NodeId::numeric(0, ids::SERVER),
            ids::REF_HAS_COMPONENT,
            NodeId::numeric(0, ids::SERVER_STATUS),
        );
        space.insert(Node::object(
            NodeId::numeric(0, ids::SERVER_BUILD_INFO),
            QualifiedName::new(0, "BuildInfo"),
            NodeId::NULL,
        ));
        space.add_reference(
            &NodeId::numeric(0, ids::SERVER_STATUS),
            ids::REF_HAS_COMPONENT,
            NodeId::numeric(0, ids::SERVER_BUILD_INFO),
        );
        space.insert(Node::variable(
            NodeId::numeric(0, ids::SERVER_SOFTWARE_VERSION),
            QualifiedName::new(0, "SoftwareVersion"),
            Variant::String(Some(software_version.to_string())),
            NodeAccess::read_only(),
        ));
        space.add_reference(
            &NodeId::numeric(0, ids::SERVER_BUILD_INFO),
            ids::REF_HAS_PROPERTY,
            NodeId::numeric(0, ids::SERVER_SOFTWARE_VERSION),
        );
        space
    }

    /// The namespace array.
    pub fn namespaces(&self) -> &[String] {
        &self.namespaces
    }

    /// Inserts a node (replacing any previous node with the same id).
    pub fn insert(&mut self, node: Node) {
        if !self.nodes.contains_key(&node.node_id) {
            self.insertion_order.push(node.node_id.clone());
        }
        self.nodes.insert(node.node_id.clone(), node);
    }

    /// Looks up a node.
    pub fn get(&self, id: &NodeId) -> Option<&Node> {
        self.nodes.get(id)
    }

    /// Looks up a node mutably.
    pub fn get_mut(&mut self, id: &NodeId) -> Option<&mut Node> {
        self.nodes.get_mut(id)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only… never: the skeleton always exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates nodes in insertion order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &Node> {
        self.insertion_order
            .iter()
            .filter_map(|id| self.nodes.get(id))
    }

    /// Adds a forward reference (and its inverse on the target).
    pub fn add_reference(&mut self, source: &NodeId, reference_type: u32, target: NodeId) {
        let rt = NodeId::numeric(0, reference_type);
        if let Some(node) = self.nodes.get_mut(source) {
            node.references.push(Reference {
                reference_type: rt.clone(),
                target: target.clone(),
                is_forward: true,
            });
        }
        if let Some(node) = self.nodes.get_mut(&target) {
            node.references.push(Reference {
                reference_type: rt,
                target: source.clone(),
                is_forward: false,
            });
        }
    }

    /// Browses forward references of `id`. Access control on browse: all
    /// users may browse the structure (matching common server behaviour;
    /// data protection happens at the attribute level).
    pub fn browse(&self, id: &NodeId) -> BrowseOutcome {
        match self.nodes.get(id) {
            None => BrowseOutcome {
                status: StatusCode::BAD_NODE_ID_UNKNOWN,
                references: Vec::new(),
            },
            Some(node) => BrowseOutcome {
                status: StatusCode::GOOD,
                references: node
                    .references
                    .iter()
                    .filter(|r| r.is_forward)
                    .cloned()
                    .collect(),
            },
        }
    }

    /// Reads one attribute as `user`.
    pub fn read_attribute(
        &self,
        id: &NodeId,
        attribute: AttributeId,
        user: &UserClass,
    ) -> DataValue {
        let Some(node) = self.nodes.get(id) else {
            return DataValue::error(StatusCode::BAD_NODE_ID_UNKNOWN);
        };
        match attribute {
            AttributeId::NodeId => DataValue::new(Variant::NodeId(node.node_id.clone())),
            AttributeId::BrowseName => {
                DataValue::new(Variant::QualifiedName(node.browse_name.clone()))
            }
            AttributeId::DisplayName => {
                DataValue::new(Variant::LocalizedText(node.display_name.clone()))
            }
            AttributeId::NodeClass => DataValue::new(Variant::Int32(match node.node_class {
                NodeClass::Object => 1,
                NodeClass::Variable => 2,
                NodeClass::Method => 4,
                NodeClass::View => 128,
            })),
            AttributeId::Value => {
                if node.node_class != NodeClass::Variable {
                    return DataValue::error(StatusCode::BAD_ATTRIBUTE_ID_INVALID);
                }
                if !node.access.user_access_level(user).readable() {
                    return DataValue::error(StatusCode::BAD_NOT_READABLE);
                }
                DataValue::new(node.value.clone().unwrap_or(Variant::Empty))
            }
            AttributeId::AccessLevel => {
                if node.node_class != NodeClass::Variable {
                    return DataValue::error(StatusCode::BAD_ATTRIBUTE_ID_INVALID);
                }
                DataValue::new(Variant::Byte(node.access.access_level.0))
            }
            AttributeId::UserAccessLevel => {
                if node.node_class != NodeClass::Variable {
                    return DataValue::error(StatusCode::BAD_ATTRIBUTE_ID_INVALID);
                }
                DataValue::new(Variant::Byte(node.access.user_access_level(user).0))
            }
            AttributeId::Executable => {
                if node.node_class != NodeClass::Method {
                    return DataValue::error(StatusCode::BAD_ATTRIBUTE_ID_INVALID);
                }
                DataValue::new(Variant::Boolean(node.access.executable))
            }
            AttributeId::UserExecutable => {
                if node.node_class != NodeClass::Method {
                    return DataValue::error(StatusCode::BAD_ATTRIBUTE_ID_INVALID);
                }
                DataValue::new(Variant::Boolean(node.access.user_executable(user)))
            }
        }
    }

    /// Writes a variable's value as `user`.
    pub fn write_value(&mut self, id: &NodeId, value: Variant, user: &UserClass) -> StatusCode {
        let Some(node) = self.nodes.get_mut(id) else {
            return StatusCode::BAD_NODE_ID_UNKNOWN;
        };
        if node.node_class != NodeClass::Variable {
            return StatusCode::BAD_ATTRIBUTE_ID_INVALID;
        }
        if !node.access.user_access_level(user).writable() {
            return StatusCode::BAD_NOT_WRITABLE;
        }
        node.value = Some(value);
        StatusCode::GOOD
    }

    /// Invokes a method as `user`. The simulation's methods have no
    /// behaviour beyond access control; a successful call returns no
    /// outputs (the paper's scanner never calls methods — this path
    /// exists so servers enforce and advertise executability correctly).
    pub fn call_method(&self, method_id: &NodeId, user: &UserClass) -> StatusCode {
        let Some(node) = self.nodes.get(method_id) else {
            return StatusCode::BAD_METHOD_INVALID;
        };
        if node.node_class != NodeClass::Method {
            return StatusCode::BAD_METHOD_INVALID;
        }
        if !node.access.user_executable(user) {
            return StatusCode::BAD_NOT_EXECUTABLE;
        }
        StatusCode::GOOD
    }

    /// Count of variable nodes.
    pub fn variable_count(&self) -> usize {
        self.nodes
            .values()
            .filter(|n| n.node_class == NodeClass::Variable)
            .count()
    }

    /// Count of method nodes.
    pub fn method_count(&self) -> usize {
        self.nodes
            .values()
            .filter(|n| n.node_class == NodeClass::Method)
            .count()
    }

    /// Effective access summary for `user`: (readable variables,
    /// writable variables, executable methods).
    pub fn access_summary(&self, user: &UserClass) -> (usize, usize, usize) {
        let mut readable = 0;
        let mut writable = 0;
        let mut executable = 0;
        for node in self.nodes.values() {
            match node.node_class {
                NodeClass::Variable => {
                    let lvl = node.access.user_access_level(user);
                    if lvl.readable() {
                        readable += 1;
                    }
                    if lvl.writable() {
                        writable += 1;
                    }
                }
                NodeClass::Method if node.access.user_executable(user) => {
                    executable += 1;
                }
                _ => {}
            }
        }
        (readable, writable, executable)
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new(&[], "1.0.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_types::AccessLevel;

    fn space_with_device() -> AddressSpace {
        let mut s = AddressSpace::new(&["urn:factory:plc"], "2.1.0");
        let device = NodeId::string(1, "Device");
        s.insert(Node::object(
            device.clone(),
            QualifiedName::new(1, "Device"),
            NodeId::numeric(0, ids::TYPE_FOLDER),
        ));
        s.add_reference(
            &NodeId::numeric(0, ids::OBJECTS_FOLDER),
            ids::REF_ORGANIZES,
            device.clone(),
        );
        s.insert(Node::variable(
            NodeId::string(1, "m3InflowPerHour"),
            QualifiedName::new(1, "m3InflowPerHour"),
            Variant::Double(12.5),
            NodeAccess::read_only(),
        ));
        s.add_reference(
            &device,
            ids::REF_HAS_COMPONENT,
            NodeId::string(1, "m3InflowPerHour"),
        );
        s.insert(Node::variable(
            NodeId::string(1, "rSetFillLevel"),
            QualifiedName::new(1, "rSetFillLevel"),
            Variant::Float(80.0),
            NodeAccess::read_write_all(),
        ));
        s.add_reference(
            &device,
            ids::REF_HAS_COMPONENT,
            NodeId::string(1, "rSetFillLevel"),
        );
        s.insert(Node::method(
            NodeId::string(1, "AddEndpoint"),
            QualifiedName::new(1, "AddEndpoint"),
            true,
        ));
        s.add_reference(
            &device,
            ids::REF_HAS_COMPONENT,
            NodeId::string(1, "AddEndpoint"),
        );
        s
    }

    #[test]
    fn skeleton_exists() {
        let s = AddressSpace::default();
        assert!(s.get(&NodeId::numeric(0, ids::ROOT_FOLDER)).is_some());
        assert!(s.get(&NodeId::numeric(0, ids::OBJECTS_FOLDER)).is_some());
        assert!(s
            .get(&NodeId::numeric(0, ids::SERVER_NAMESPACE_ARRAY))
            .is_some());
        assert!(s
            .get(&NodeId::numeric(0, ids::SERVER_SOFTWARE_VERSION))
            .is_some());
        assert!(!s.is_empty());
    }

    #[test]
    fn namespace_array_readable() {
        let s = AddressSpace::new(&["urn:factory:plc", "urn:vendor:product"], "1.0");
        let dv = s.read_attribute(
            &NodeId::numeric(0, ids::SERVER_NAMESPACE_ARRAY),
            AttributeId::Value,
            &UserClass::Anonymous,
        );
        assert!(dv.is_good());
        match dv.value.unwrap() {
            Variant::Array(items) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[0], Variant::String(Some(ids::NS0_URI.into())));
                assert_eq!(items[1], Variant::String(Some("urn:factory:plc".into())));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn browse_follows_forward_references() {
        let s = space_with_device();
        let root = s.browse(&NodeId::numeric(0, ids::ROOT_FOLDER));
        assert_eq!(root.status, StatusCode::GOOD);
        assert_eq!(root.references.len(), 3);
        let objects = s.browse(&NodeId::numeric(0, ids::OBJECTS_FOLDER));
        // Server + Device.
        assert_eq!(objects.references.len(), 2);
        // Inverse references are not reported.
        let device = s.browse(&NodeId::string(1, "Device"));
        assert_eq!(device.references.len(), 3);
        assert!(device.references.iter().all(|r| r.is_forward));
    }

    #[test]
    fn browse_unknown_node() {
        let s = AddressSpace::default();
        let out = s.browse(&NodeId::string(5, "nope"));
        assert_eq!(out.status, StatusCode::BAD_NODE_ID_UNKNOWN);
    }

    #[test]
    fn read_value_respects_access() {
        let mut s = space_with_device();
        // Make inflow hidden from anonymous.
        s.get_mut(&NodeId::string(1, "m3InflowPerHour"))
            .unwrap()
            .access = NodeAccess::authenticated_only();
        let anon = s.read_attribute(
            &NodeId::string(1, "m3InflowPerHour"),
            AttributeId::Value,
            &UserClass::Anonymous,
        );
        assert_eq!(anon.status_code(), StatusCode::BAD_NOT_READABLE);
        let auth = s.read_attribute(
            &NodeId::string(1, "m3InflowPerHour"),
            AttributeId::Value,
            &UserClass::Authenticated,
        );
        assert!(auth.is_good());
    }

    #[test]
    fn user_access_level_attribute_differs_per_user() {
        let s = space_with_device();
        let mut sw = s.clone();
        sw.get_mut(&NodeId::string(1, "rSetFillLevel"))
            .unwrap()
            .access = NodeAccess::write_authenticated();
        let anon = sw.read_attribute(
            &NodeId::string(1, "rSetFillLevel"),
            AttributeId::UserAccessLevel,
            &UserClass::Anonymous,
        );
        assert_eq!(anon.value, Some(Variant::Byte(AccessLevel::CURRENT_READ.0)));
        let auth = sw.read_attribute(
            &NodeId::string(1, "rSetFillLevel"),
            AttributeId::UserAccessLevel,
            &UserClass::Authenticated,
        );
        assert_eq!(auth.value, Some(Variant::Byte(AccessLevel::READ_WRITE.0)));
    }

    #[test]
    fn write_respects_access() {
        let mut s = space_with_device();
        let st = s.write_value(
            &NodeId::string(1, "rSetFillLevel"),
            Variant::Float(99.0),
            &UserClass::Anonymous,
        );
        assert_eq!(st, StatusCode::GOOD);
        assert_eq!(
            s.get(&NodeId::string(1, "rSetFillLevel")).unwrap().value,
            Some(Variant::Float(99.0))
        );
        let st = s.write_value(
            &NodeId::string(1, "m3InflowPerHour"),
            Variant::Double(0.0),
            &UserClass::Anonymous,
        );
        assert_eq!(st, StatusCode::BAD_NOT_WRITABLE);
        let st = s.write_value(
            &NodeId::string(9, "x"),
            Variant::Empty,
            &UserClass::Anonymous,
        );
        assert_eq!(st, StatusCode::BAD_NODE_ID_UNKNOWN);
    }

    #[test]
    fn call_respects_executability() {
        let mut s = space_with_device();
        assert_eq!(
            s.call_method(&NodeId::string(1, "AddEndpoint"), &UserClass::Anonymous),
            StatusCode::GOOD
        );
        s.get_mut(&NodeId::string(1, "AddEndpoint")).unwrap().access = NodeAccess::method(false);
        assert_eq!(
            s.call_method(&NodeId::string(1, "AddEndpoint"), &UserClass::Anonymous),
            StatusCode::BAD_NOT_EXECUTABLE
        );
        assert_eq!(
            s.call_method(&NodeId::string(1, "AddEndpoint"), &UserClass::Authenticated),
            StatusCode::GOOD
        );
        // Calling a variable is invalid.
        assert_eq!(
            s.call_method(
                &NodeId::string(1, "rSetFillLevel"),
                &UserClass::Authenticated
            ),
            StatusCode::BAD_METHOD_INVALID
        );
    }

    #[test]
    fn access_summary_counts() {
        let s = space_with_device();
        let (r, w, x) = s.access_summary(&UserClass::Anonymous);
        // Variables: NamespaceArray, SoftwareVersion, inflow, fill level
        // (all readable); writable: fill level only; methods: AddEndpoint.
        assert_eq!(r, 4);
        assert_eq!(w, 1);
        assert_eq!(x, 1);
    }

    #[test]
    fn wrong_attribute_for_class() {
        let s = space_with_device();
        let dv = s.read_attribute(
            &NodeId::string(1, "Device"),
            AttributeId::Value,
            &UserClass::Anonymous,
        );
        assert_eq!(dv.status_code(), StatusCode::BAD_ATTRIBUTE_ID_INVALID);
        let dv = s.read_attribute(
            &NodeId::string(1, "rSetFillLevel"),
            AttributeId::Executable,
            &UserClass::Anonymous,
        );
        assert_eq!(dv.status_code(), StatusCode::BAD_ATTRIBUTE_ID_INVALID);
    }

    #[test]
    fn iteration_is_deterministic() {
        let a = space_with_device();
        let b = space_with_device();
        let ids_a: Vec<_> = a.iter().map(|n| n.node_id.clone()).collect();
        let ids_b: Vec<_> = b.iter().map(|n| n.node_id.clone()).collect();
        assert_eq!(ids_a, ids_b);
    }
}
