//! Node records and per-user access resolution.

use ua_types::{AccessLevel, LocalizedText, NodeClass, NodeId, QualifiedName, Variant};

/// The identity class a request executes under. OPC UA servers can grant
/// different rights per user; the study contrasts the *anonymous* user
/// (what any Internet attacker gets) with authenticated users.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum UserClass {
    /// No credentials presented.
    Anonymous,
    /// Authenticated (username, certificate, or issued token).
    Authenticated,
}

/// Per-node access configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeAccess {
    /// What the node supports at all (`AccessLevel` attribute).
    pub access_level: AccessLevel,
    /// Effective rights of anonymous users (`UserAccessLevel` when
    /// anonymous).
    pub anonymous: AccessLevel,
    /// Effective rights of authenticated users.
    pub authenticated: AccessLevel,
    /// Whether the method is executable at all (`Executable`).
    pub executable: bool,
    /// Whether anonymous users may execute (`UserExecutable`).
    pub anonymous_executable: bool,
    /// Whether authenticated users may execute.
    pub authenticated_executable: bool,
}

impl Default for NodeAccess {
    fn default() -> Self {
        NodeAccess {
            access_level: AccessLevel::CURRENT_READ,
            anonymous: AccessLevel::CURRENT_READ,
            authenticated: AccessLevel::CURRENT_READ,
            executable: false,
            anonymous_executable: false,
            authenticated_executable: false,
        }
    }
}

impl NodeAccess {
    /// Read-only for everyone.
    pub fn read_only() -> Self {
        Self::default()
    }

    /// Readable and writable by everyone (the unprotected configuration
    /// §5.4 finds on a third of accessible hosts).
    pub fn read_write_all() -> Self {
        NodeAccess {
            access_level: AccessLevel::READ_WRITE,
            anonymous: AccessLevel::READ_WRITE,
            authenticated: AccessLevel::READ_WRITE,
            ..Self::default()
        }
    }

    /// Readable by all, writable only by authenticated users.
    pub fn write_authenticated() -> Self {
        NodeAccess {
            access_level: AccessLevel::READ_WRITE,
            anonymous: AccessLevel::CURRENT_READ,
            authenticated: AccessLevel::READ_WRITE,
            ..Self::default()
        }
    }

    /// Completely hidden from anonymous users.
    pub fn authenticated_only() -> Self {
        NodeAccess {
            access_level: AccessLevel::READ_WRITE,
            anonymous: AccessLevel::NONE,
            authenticated: AccessLevel::READ_WRITE,
            ..Self::default()
        }
    }

    /// A method executable by the given user classes.
    pub fn method(anonymous_executable: bool) -> Self {
        NodeAccess {
            access_level: AccessLevel::NONE,
            anonymous: AccessLevel::NONE,
            authenticated: AccessLevel::NONE,
            executable: true,
            anonymous_executable,
            authenticated_executable: true,
        }
    }

    /// Effective `UserAccessLevel` for `user` (intersected with the node
    /// capability, as Part 3 requires).
    pub fn user_access_level(&self, user: &UserClass) -> AccessLevel {
        let granted = match user {
            UserClass::Anonymous => self.anonymous,
            UserClass::Authenticated => self.authenticated,
        };
        granted.intersect(self.access_level)
    }

    /// Effective `UserExecutable` for `user`.
    pub fn user_executable(&self, user: &UserClass) -> bool {
        self.executable
            && match user {
                UserClass::Anonymous => self.anonymous_executable,
                UserClass::Authenticated => self.authenticated_executable,
            }
    }
}

/// A typed reference to another node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reference {
    /// Reference type (e.g. Organizes, HasComponent).
    pub reference_type: NodeId,
    /// Target node.
    pub target: NodeId,
    /// Forward (source → target) or inverse.
    pub is_forward: bool,
}

/// A node in the address space.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Unique id.
    pub node_id: NodeId,
    /// Browse name (namespace-qualified).
    pub browse_name: QualifiedName,
    /// Display name.
    pub display_name: LocalizedText,
    /// Node class.
    pub node_class: NodeClass,
    /// Current value (variables only).
    pub value: Option<Variant>,
    /// Access configuration.
    pub access: NodeAccess,
    /// Outgoing/incoming references.
    pub references: Vec<Reference>,
    /// HasTypeDefinition target (folders/variables).
    pub type_definition: NodeId,
}

impl Node {
    /// Creates an object node.
    pub fn object(node_id: NodeId, browse_name: QualifiedName, type_definition: NodeId) -> Self {
        Node {
            node_id,
            display_name: LocalizedText::new(browse_name.name.clone().unwrap_or_default()),
            browse_name,
            node_class: NodeClass::Object,
            value: None,
            access: NodeAccess::read_only(),
            references: Vec::new(),
            type_definition,
        }
    }

    /// Creates a variable node.
    pub fn variable(
        node_id: NodeId,
        browse_name: QualifiedName,
        value: Variant,
        access: NodeAccess,
    ) -> Self {
        Node {
            node_id,
            display_name: LocalizedText::new(browse_name.name.clone().unwrap_or_default()),
            browse_name,
            node_class: NodeClass::Variable,
            value: Some(value),
            access,
            references: Vec::new(),
            type_definition: NodeId::numeric(0, crate::ids::TYPE_BASE_DATA_VARIABLE),
        }
    }

    /// Creates a method node.
    pub fn method(node_id: NodeId, browse_name: QualifiedName, anonymous_executable: bool) -> Self {
        Node {
            node_id,
            display_name: LocalizedText::new(browse_name.name.clone().unwrap_or_default()),
            browse_name,
            node_class: NodeClass::Method,
            value: None,
            access: NodeAccess::method(anonymous_executable),
            references: Vec::new(),
            type_definition: NodeId::NULL,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_access_is_intersection() {
        // Node only supports read; even if a user class is granted RW the
        // effective level is read-only.
        let access = NodeAccess {
            access_level: AccessLevel::CURRENT_READ,
            anonymous: AccessLevel::READ_WRITE,
            authenticated: AccessLevel::READ_WRITE,
            ..NodeAccess::default()
        };
        assert_eq!(
            access.user_access_level(&UserClass::Anonymous),
            AccessLevel::CURRENT_READ
        );
    }

    #[test]
    fn presets_differentiate_users() {
        let a = NodeAccess::write_authenticated();
        assert!(a.user_access_level(&UserClass::Anonymous).readable());
        assert!(!a.user_access_level(&UserClass::Anonymous).writable());
        assert!(a.user_access_level(&UserClass::Authenticated).writable());

        let h = NodeAccess::authenticated_only();
        assert!(!h.user_access_level(&UserClass::Anonymous).readable());
        assert!(h.user_access_level(&UserClass::Authenticated).readable());

        let rw = NodeAccess::read_write_all();
        assert!(rw.user_access_level(&UserClass::Anonymous).writable());
    }

    #[test]
    fn method_executability() {
        let m = NodeAccess::method(false);
        assert!(!m.user_executable(&UserClass::Anonymous));
        assert!(m.user_executable(&UserClass::Authenticated));
        let open = NodeAccess::method(true);
        assert!(open.user_executable(&UserClass::Anonymous));
        // Non-executable method stays dead for everyone.
        let dead = NodeAccess {
            executable: false,
            anonymous_executable: true,
            authenticated_executable: true,
            ..NodeAccess::method(true)
        };
        assert!(!dead.user_executable(&UserClass::Authenticated));
    }

    #[test]
    fn constructors_set_class() {
        let o = Node::object(
            NodeId::numeric(2, 1),
            QualifiedName::new(2, "Device"),
            NodeId::numeric(0, crate::ids::TYPE_FOLDER),
        );
        assert_eq!(o.node_class, NodeClass::Object);
        let v = Node::variable(
            NodeId::string(2, "m3InflowPerHour"),
            QualifiedName::new(2, "m3InflowPerHour"),
            Variant::Double(1.5),
            NodeAccess::read_only(),
        );
        assert_eq!(v.node_class, NodeClass::Variable);
        assert_eq!(v.value, Some(Variant::Double(1.5)));
        let m = Node::method(
            NodeId::string(2, "AddEndpoint"),
            QualifiedName::new(2, "AddEndpoint"),
            true,
        );
        assert_eq!(m.node_class, NodeClass::Method);
        assert!(m.access.user_executable(&UserClass::Anonymous));
    }
}
