//! # ua-proto
//!
//! The OPC UA binary protocol (OPC 10000-6): transport framing, service
//! messages, secure-channel cryptography, and chunking.
//!
//! * [`transport`] — UACP `HEL`/`ACK`/`ERR`/`RHE` messages, headers,
//!   incremental framing;
//! * [`services`] — typed service requests/responses (GetEndpoints,
//!   OpenSecureChannel, sessions, Browse, Read, Write, Call) and the
//!   [`services::ServiceBody`] dispatcher;
//! * [`secure`] — asymmetric (`OPN`, RSA) and symmetric (`MSG`,
//!   HMAC + AES-CBC) chunk protection with `P_SHA` key derivation;
//! * [`chunk`] — chunking and bounded reassembly;
//! * [`uatls`] — the `uat-tls` prologue framing (TLS-wrapped opc.tcp,
//!   after "Missed Opportunities");
//! * [`fingerprint`] — the vendor error-taxonomy quirk table the
//!   fingerprint probe recovers.
//!
//! The crate is transport-agnostic: it turns byte slices into messages
//! and back. `ua-server` and `ua-client` drive it over `netsim` streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
pub mod fingerprint;
pub mod secure;
pub mod services;
pub mod transport;
pub mod uatls;

pub use chunk::{chunk_message, AssembledMessage, Reassembler, ReassemblyError};
pub use secure::{
    derive_keys, hash_for, open_asymmetric, open_symmetric, policy_crypto, seal_asymmetric,
    seal_symmetric, AsymmetricSecurityHeader, DerivedKeys, OpenedAsymmetric, OpenedChunk,
    PolicyCrypto, SecureError, SequenceHeader,
};
pub use services::ServiceBody;
pub use transport::{
    Acknowledge, ChunkKind, ErrorMessage, FrameReader, Hello, MessageHeader, MessageType,
    ReverseHello, TransportMessage, HEADER_SIZE, MAX_MESSAGE_SIZE,
};
