//! Vendor fingerprinting via transport-error taxonomy.
//!
//! Erba et al. (2021) showed OPC UA implementations are distinguishable
//! by how they *fail*: the status code a stack returns for a malformed
//! hello is an implementation detail no specification pins down, so each
//! vendor's choice is a stable fingerprint. The scanner's fingerprint
//! stage sends a `HEL` with an absurd protocol version
//! ([`PROBE_PROTOCOL_VERSION`]) and reads the `ERR` taxonomy off the
//! answer; this module is the shared quirk table — `ua-server` consults
//! it to plant the quirks, the scanner to recover them.

use ua_types::StatusCode;

/// The deliberately-invalid protocol version the fingerprint probe
/// sends (real clients always send 0).
pub const PROBE_PROTOCOL_VERSION: u32 = 0xFFFF_FFFF;

/// The suffix every simulated vendor appends to its application name.
const APPLICATION_NAME_SUFFIX: &str = " OPC UA Server";

/// Vendor → the `ERR` status its stack returns for a bad-version hello.
/// Keyed by the vendor prefix of the server's application name; the
/// codes are pairwise distinct (asserted in tests) so the taxonomy is
/// an injective fingerprint.
pub const VENDOR_QUIRKS: [(&str, StatusCode); 6] = [
    ("Bachfeld", StatusCode::BAD_TCP_ENDPOINT_URL_INVALID),
    ("Siegwart", StatusCode::BAD_TCP_MESSAGE_TOO_LARGE),
    ("Acme Automation", StatusCode::BAD_TCP_INTERNAL_ERROR),
    ("Hydrotec", StatusCode::BAD_COMMUNICATION_ERROR),
    ("Voltaris", StatusCode::BAD_SERVICE_UNSUPPORTED),
    ("Ferrum Works", StatusCode::BAD_UNEXPECTED_ERROR),
];

/// The error status `vendor`'s stack answers a bad-version hello with,
/// or `None` for vendors (or non-vendor names) without a known quirk —
/// those stacks ignore the version field entirely, the lenient default.
pub fn quirk_for_vendor(vendor: &str) -> Option<StatusCode> {
    VENDOR_QUIRKS
        .iter()
        .find(|(v, _)| *v == vendor)
        .map(|&(_, status)| status)
}

/// Reverse lookup: the vendor whose stack signs its bad-version `ERR`
/// with `status`, if the taxonomy knows it.
pub fn vendor_for_quirk(status: StatusCode) -> Option<&'static str> {
    VENDOR_QUIRKS
        .iter()
        .find(|&&(_, s)| s == status)
        .map(|&(v, _)| v)
}

/// Extracts the vendor prefix from a simulated application name
/// (`"Hydrotec OPC UA Server"` → `Some("Hydrotec")`). Returns the
/// table's `'static` spelling so callers can compare by identity.
pub fn vendor_of_application_name(application_name: &str) -> Option<&'static str> {
    let vendor = application_name.strip_suffix(APPLICATION_NAME_SUFFIX)?;
    VENDOR_QUIRKS
        .iter()
        .find(|(v, _)| *v == vendor)
        .map(|&(v, _)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_is_injective() {
        for (i, (_, a)) in VENDOR_QUIRKS.iter().enumerate() {
            for (_, b) in &VENDOR_QUIRKS[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn quirk_roundtrip() {
        for &(vendor, status) in &VENDOR_QUIRKS {
            assert_eq!(quirk_for_vendor(vendor), Some(status));
            assert_eq!(vendor_for_quirk(status), Some(vendor));
        }
        assert_eq!(quirk_for_vendor("Unknown Corp"), None);
        assert_eq!(vendor_for_quirk(StatusCode::GOOD), None);
    }

    #[test]
    fn application_name_parsing() {
        assert_eq!(
            vendor_of_application_name("Hydrotec OPC UA Server"),
            Some("Hydrotec")
        );
        // The plain presets carry no vendor prefix.
        assert_eq!(vendor_of_application_name("OPC UA Server"), None);
        assert_eq!(vendor_of_application_name("Mystery OPC UA Server"), None);
    }
}
