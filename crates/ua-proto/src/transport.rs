//! UACP transport-level messages (OPC 10000-6 §7.1): `HEL`, `ACK`, `ERR`,
//! `RHE`, and the common message header shared with secure-channel
//! messages (`OPN`, `MSG`, `CLO`).

use ua_types::{CodecError, Decoder, Encoder, StatusCode};

/// The three-letter message type in the UACP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageType {
    /// Client hello.
    Hello,
    /// Server acknowledge.
    Acknowledge,
    /// Transport error notification.
    Error,
    /// Reverse hello (server-initiated connections).
    ReverseHello,
    /// OpenSecureChannel.
    Open,
    /// Secured service message.
    Msg,
    /// CloseSecureChannel.
    Close,
}

impl MessageType {
    /// The three ASCII bytes on the wire.
    pub fn bytes(self) -> [u8; 3] {
        match self {
            MessageType::Hello => *b"HEL",
            MessageType::Acknowledge => *b"ACK",
            MessageType::Error => *b"ERR",
            MessageType::ReverseHello => *b"RHE",
            MessageType::Open => *b"OPN",
            MessageType::Msg => *b"MSG",
            MessageType::Close => *b"CLO",
        }
    }

    /// Parses the three ASCII bytes.
    pub fn from_bytes(b: [u8; 3]) -> Option<Self> {
        Some(match &b {
            b"HEL" => MessageType::Hello,
            b"ACK" => MessageType::Acknowledge,
            b"ERR" => MessageType::Error,
            b"RHE" => MessageType::ReverseHello,
            b"OPN" => MessageType::Open,
            b"MSG" => MessageType::Msg,
            b"CLO" => MessageType::Close,
            _ => return None,
        })
    }
}

/// Chunk continuation marker (fourth header byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChunkKind {
    /// Intermediate chunk (`C`).
    Intermediate,
    /// Final chunk (`F`).
    Final,
    /// Abort chunk (`A`) — sender gave up mid-message.
    Abort,
}

impl ChunkKind {
    /// Wire byte.
    pub fn byte(self) -> u8 {
        match self {
            ChunkKind::Intermediate => b'C',
            ChunkKind::Final => b'F',
            ChunkKind::Abort => b'A',
        }
    }

    /// Parses the wire byte.
    pub fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            b'C' => ChunkKind::Intermediate,
            b'F' => ChunkKind::Final,
            b'A' => ChunkKind::Abort,
            _ => return None,
        })
    }
}

/// The 8-byte UACP message header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageHeader {
    /// Message type.
    pub message_type: MessageType,
    /// Chunk marker (`F` for non-chunked message types).
    pub chunk: ChunkKind,
    /// Total size of the message including this header.
    pub size: u32,
}

/// Minimum size of a UACP message (just a header).
pub const HEADER_SIZE: usize = 8;

/// Hard upper bound we accept for any single message, to bound memory on
/// hostile input (matches the scanner's 50 MB per-host traffic limit
/// order of magnitude).
pub const MAX_MESSAGE_SIZE: u32 = 16 * 1024 * 1024;

impl MessageHeader {
    /// Encodes the header.
    pub fn encode(&self, w: &mut Encoder) {
        w.raw(&self.message_type.bytes());
        w.u8(self.chunk.byte());
        w.u32(self.size);
    }

    /// Decodes a header from exactly 8 bytes.
    pub fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let t = r.raw(3)?;
        let message_type = MessageType::from_bytes([t[0], t[1], t[2]])
            .ok_or(CodecError::Invalid("unknown UACP message type"))?;
        let chunk =
            ChunkKind::from_byte(r.u8()?).ok_or(CodecError::Invalid("unknown chunk marker"))?;
        let size = r.u32()?;
        if size < HEADER_SIZE as u32 || size > MAX_MESSAGE_SIZE {
            return Err(CodecError::BadLength(size as i64));
        }
        Ok(MessageHeader {
            message_type,
            chunk,
            size,
        })
    }
}

/// `HEL` — opens a UACP connection and negotiates buffer limits.
#[derive(Debug, Clone, PartialEq)]
pub struct Hello {
    /// Protocol version (0).
    pub protocol_version: u32,
    /// Largest chunk the sender can receive.
    pub receive_buffer_size: u32,
    /// Largest chunk the sender will send.
    pub send_buffer_size: u32,
    /// Largest reassembled message accepted (0 = no limit).
    pub max_message_size: u32,
    /// Maximum chunk count per message (0 = no limit).
    pub max_chunk_count: u32,
    /// The URL the client believes it is connecting to.
    pub endpoint_url: Option<String>,
}

impl Default for Hello {
    fn default() -> Self {
        Hello {
            protocol_version: 0,
            receive_buffer_size: 65_536,
            send_buffer_size: 65_536,
            max_message_size: MAX_MESSAGE_SIZE,
            max_chunk_count: 4096,
            endpoint_url: None,
        }
    }
}

impl Hello {
    fn encode_body(&self, w: &mut Encoder) {
        w.u32(self.protocol_version);
        w.u32(self.receive_buffer_size);
        w.u32(self.send_buffer_size);
        w.u32(self.max_message_size);
        w.u32(self.max_chunk_count);
        w.string(self.endpoint_url.as_deref());
    }

    fn decode_body(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Hello {
            protocol_version: r.u32()?,
            receive_buffer_size: r.u32()?,
            send_buffer_size: r.u32()?,
            max_message_size: r.u32()?,
            max_chunk_count: r.u32()?,
            endpoint_url: r.string()?,
        })
    }
}

/// `ACK` — the server's answer to `HEL` with its revised limits.
#[derive(Debug, Clone, PartialEq)]
pub struct Acknowledge {
    /// Protocol version (0).
    pub protocol_version: u32,
    /// Largest chunk the server can receive.
    pub receive_buffer_size: u32,
    /// Largest chunk the server will send.
    pub send_buffer_size: u32,
    /// Largest reassembled message accepted.
    pub max_message_size: u32,
    /// Maximum chunk count per message.
    pub max_chunk_count: u32,
}

impl Default for Acknowledge {
    fn default() -> Self {
        Acknowledge {
            protocol_version: 0,
            receive_buffer_size: 65_536,
            send_buffer_size: 65_536,
            max_message_size: MAX_MESSAGE_SIZE,
            max_chunk_count: 4096,
        }
    }
}

impl Acknowledge {
    fn encode_body(&self, w: &mut Encoder) {
        w.u32(self.protocol_version);
        w.u32(self.receive_buffer_size);
        w.u32(self.send_buffer_size);
        w.u32(self.max_message_size);
        w.u32(self.max_chunk_count);
    }

    fn decode_body(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Acknowledge {
            protocol_version: r.u32()?,
            receive_buffer_size: r.u32()?,
            send_buffer_size: r.u32()?,
            max_message_size: r.u32()?,
            max_chunk_count: r.u32()?,
        })
    }
}

/// `ERR` — transport-level error notification before closing.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorMessage {
    /// Status code describing the error.
    pub error: StatusCode,
    /// Optional human-readable reason.
    pub reason: Option<String>,
}

impl ErrorMessage {
    /// Builds an error message.
    pub fn new(error: StatusCode, reason: impl Into<String>) -> Self {
        ErrorMessage {
            error,
            reason: Some(reason.into()),
        }
    }

    fn encode_body(&self, w: &mut Encoder) {
        w.u32(self.error.0);
        w.string(self.reason.as_deref());
    }

    fn decode_body(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(ErrorMessage {
            error: StatusCode(r.u32()?),
            reason: r.string()?,
        })
    }
}

/// `RHE` — reverse hello (listed for completeness; the study's scanner
/// never initiates reverse connections).
#[derive(Debug, Clone, PartialEq)]
pub struct ReverseHello {
    /// The server's application URI.
    pub server_uri: Option<String>,
    /// The endpoint URL the client should connect back to.
    pub endpoint_url: Option<String>,
}

impl ReverseHello {
    fn encode_body(&self, w: &mut Encoder) {
        w.string(self.server_uri.as_deref());
        w.string(self.endpoint_url.as_deref());
    }

    fn decode_body(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(ReverseHello {
            server_uri: r.string()?,
            endpoint_url: r.string()?,
        })
    }
}

/// A parsed transport-layer message.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportMessage {
    /// Client hello.
    Hello(Hello),
    /// Server acknowledge.
    Acknowledge(Acknowledge),
    /// Error notification.
    Error(ErrorMessage),
    /// Reverse hello.
    ReverseHello(ReverseHello),
    /// A secure-channel chunk (`OPN`/`MSG`/`CLO`), returned raw: security
    /// processing happens in [`crate::secure`].
    Chunk {
        /// OPN, MSG or CLO.
        message_type: MessageType,
        /// Chunk continuation marker.
        chunk: ChunkKind,
        /// The bytes after the 8-byte header.
        body: Vec<u8>,
    },
}

impl TransportMessage {
    /// Serializes the message with its header.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Encoder::new();
        self.encode_into(&mut w);
        w.finish()
    }

    /// Appends one complete frame (header plus body) to `w` — encode
    /// loops reuse a single [`Encoder::reset`] buffer across messages
    /// instead of allocating per message. The header is written first
    /// with a placeholder size and patched once the body length is
    /// known, so the body is never staged in a separate buffer.
    pub fn encode_into(&self, w: &mut Encoder) {
        let start = w.len();
        let (message_type, chunk) = match self {
            TransportMessage::Hello(_) => (MessageType::Hello, ChunkKind::Final),
            TransportMessage::Acknowledge(_) => (MessageType::Acknowledge, ChunkKind::Final),
            TransportMessage::Error(_) => (MessageType::Error, ChunkKind::Final),
            TransportMessage::ReverseHello(_) => (MessageType::ReverseHello, ChunkKind::Final),
            TransportMessage::Chunk {
                message_type,
                chunk,
                ..
            } => (*message_type, *chunk),
        };
        MessageHeader {
            message_type,
            chunk,
            size: 0, // patched below
        }
        .encode(w);
        match self {
            TransportMessage::Hello(h) => h.encode_body(w),
            TransportMessage::Acknowledge(a) => a.encode_body(w),
            TransportMessage::Error(e) => e.encode_body(w),
            TransportMessage::ReverseHello(r) => r.encode_body(w),
            TransportMessage::Chunk { body, .. } => w.raw(body),
        }
        w.patch_u32(start + 4, (w.len() - start) as u32);
    }

    /// Parses one complete message (header plus body).
    pub fn decode(data: &[u8]) -> Result<Self, CodecError> {
        let mut r = Decoder::new(data);
        let header = MessageHeader::decode(&mut r)?;
        if header.size as usize != data.len() {
            return Err(CodecError::BadLength(header.size as i64));
        }
        let body = r.raw(data.len() - HEADER_SIZE)?;
        let mut br = Decoder::new(body);
        let msg = match header.message_type {
            MessageType::Hello => TransportMessage::Hello(Hello::decode_body(&mut br)?),
            MessageType::Acknowledge => {
                TransportMessage::Acknowledge(Acknowledge::decode_body(&mut br)?)
            }
            MessageType::Error => TransportMessage::Error(ErrorMessage::decode_body(&mut br)?),
            MessageType::ReverseHello => {
                TransportMessage::ReverseHello(ReverseHello::decode_body(&mut br)?)
            }
            mt @ (MessageType::Open | MessageType::Msg | MessageType::Close) => {
                return Ok(TransportMessage::Chunk {
                    message_type: mt,
                    chunk: header.chunk,
                    body: body.to_vec(),
                })
            }
        };
        if !br.is_empty() {
            return Err(CodecError::Invalid("trailing bytes in transport message"));
        }
        Ok(msg)
    }
}

/// Incremental frame extractor: feeds on a growing byte buffer and yields
/// complete messages (the "framing" layer the networking guides
/// emphasize). Returns `Ok(None)` when more bytes are needed.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Tries to extract the next complete raw frame (header + body bytes)
    /// without interpreting it — secure-channel chunks are handed to the
    /// crypto layer whole.
    pub fn next_raw_frame(&mut self) -> Result<Option<Vec<u8>>, CodecError> {
        if self.buf.len() < HEADER_SIZE {
            return Ok(None);
        }
        let mut r = Decoder::new(&self.buf);
        let header = MessageHeader::decode(&mut r)?;
        let size = header.size as usize;
        if self.buf.len() < size {
            return Ok(None);
        }
        Ok(Some(self.buf.drain(..size).collect()))
    }

    /// Tries to extract the next complete message.
    pub fn next_message(&mut self) -> Result<Option<TransportMessage>, CodecError> {
        if self.buf.len() < HEADER_SIZE {
            return Ok(None);
        }
        let mut r = Decoder::new(&self.buf);
        let header = MessageHeader::decode(&mut r)?;
        let size = header.size as usize;
        if self.buf.len() < size {
            return Ok(None);
        }
        let frame: Vec<u8> = self.buf.drain(..size).collect();
        TransportMessage::decode(&frame).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrip() {
        let hello = Hello {
            endpoint_url: Some("opc.tcp://198.51.100.7:4840/".into()),
            ..Hello::default()
        };
        let msg = TransportMessage::Hello(hello.clone());
        let bytes = msg.encode();
        assert_eq!(&bytes[0..4], b"HELF");
        assert_eq!(TransportMessage::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn ack_err_rhe_roundtrip() {
        for msg in [
            TransportMessage::Acknowledge(Acknowledge::default()),
            TransportMessage::Error(ErrorMessage::new(
                StatusCode::BAD_TCP_MESSAGE_TYPE_INVALID,
                "bad message",
            )),
            TransportMessage::ReverseHello(ReverseHello {
                server_uri: Some("urn:x".into()),
                endpoint_url: Some("opc.tcp://10.0.0.1:4840".into()),
            }),
        ] {
            let bytes = msg.encode();
            assert_eq!(TransportMessage::decode(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn chunk_passthrough() {
        let msg = TransportMessage::Chunk {
            message_type: MessageType::Msg,
            chunk: ChunkKind::Intermediate,
            body: vec![1, 2, 3, 4],
        };
        let bytes = msg.encode();
        assert_eq!(&bytes[0..4], b"MSGC");
        assert_eq!(TransportMessage::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn encode_into_reuses_one_buffer_across_messages() {
        // One reset-reused encoder must produce byte-identical frames to
        // per-message encode() calls.
        let messages = [
            TransportMessage::Hello(Hello::default()),
            TransportMessage::Acknowledge(Acknowledge::default()),
            TransportMessage::Chunk {
                message_type: MessageType::Msg,
                chunk: ChunkKind::Final,
                body: vec![9; 300],
            },
        ];
        let mut w = Encoder::with_capacity(512);
        for msg in &messages {
            w.reset();
            msg.encode_into(&mut w);
            assert_eq!(w.as_bytes(), msg.encode().as_slice());
            assert_eq!(TransportMessage::decode(w.as_bytes()).unwrap(), *msg);
        }
    }

    #[test]
    fn header_size_field_checked() {
        let msg = TransportMessage::Hello(Hello::default());
        let mut bytes = msg.encode();
        // Corrupt the size field.
        bytes[4] ^= 0x01;
        assert!(TransportMessage::decode(&bytes).is_err());
    }

    #[test]
    fn unknown_type_rejected() {
        let mut bytes = TransportMessage::Hello(Hello::default()).encode();
        bytes[0] = b'X';
        assert!(TransportMessage::decode(&bytes).is_err());
    }

    #[test]
    fn oversized_header_rejected() {
        let mut w = Encoder::new();
        w.raw(b"HELF");
        w.u32(MAX_MESSAGE_SIZE + 1);
        let bytes = w.finish();
        let mut r = Decoder::new(&bytes);
        assert!(MessageHeader::decode(&mut r).is_err());
    }

    #[test]
    fn frame_reader_reassembles_split_input() {
        let m1 = TransportMessage::Hello(Hello::default()).encode();
        let m2 = TransportMessage::Acknowledge(Acknowledge::default()).encode();
        let mut stream = Vec::new();
        stream.extend_from_slice(&m1);
        stream.extend_from_slice(&m2);

        let mut fr = FrameReader::new();
        // Feed byte by byte; messages appear only when complete.
        let mut seen = Vec::new();
        for &b in &stream {
            fr.push(&[b]);
            while let Some(m) = fr.next_message().unwrap() {
                seen.push(m);
            }
        }
        assert_eq!(seen.len(), 2);
        assert!(matches!(seen[0], TransportMessage::Hello(_)));
        assert!(matches!(seen[1], TransportMessage::Acknowledge(_)));
        assert_eq!(fr.buffered(), 0);
    }

    #[test]
    fn frame_reader_surfaces_garbage() {
        let mut fr = FrameReader::new();
        fr.push(b"GARBAGE!GARBAGE!");
        assert!(fr.next_message().is_err());
    }

    #[test]
    fn chunk_kind_bytes() {
        for k in [ChunkKind::Intermediate, ChunkKind::Final, ChunkKind::Abort] {
            assert_eq!(ChunkKind::from_byte(k.byte()), Some(k));
        }
        assert_eq!(ChunkKind::from_byte(b'Z'), None);
    }
}
