//! Secure-channel message security (OPC 10000-6 §6).
//!
//! Two flavours exist on the wire:
//!
//! * **Asymmetric** (`OPN` chunks): RSA. The sender signs with its private
//!   key and encrypts with the receiver's public key. The security header
//!   carries the policy URI, the sender certificate, and the receiver
//!   certificate thumbprint — this is where the paper's scanner presents
//!   its self-signed certificate (§4) and where servers that reject
//!   foreign certificates abort (the "Secure Channel" rejections of
//!   Table 2).
//! * **Symmetric** (`MSG`/`CLO` chunks): HMAC + AES-CBC with keys derived
//!   from the exchanged nonces via `P_SHA`.
//!
//! Deviation from the spec, recorded in DESIGN.md: padding for encrypted
//! chunks uses the cipher layer's PKCS#7 instead of OPC UA's explicit
//! `PaddingSize` scheme. The byte layout is otherwise faithful.

use ua_crypto::{cbc_decrypt, cbc_encrypt, hmac, p_sha, Certificate, HashAlgorithm, RsaPrivateKey};
use ua_types::{
    CodecError, Decoder, Encoder, MessageSecurityMode, PolicyHash, SecurityPolicy, UaDecode,
    UaEncode,
};

use crate::transport::{ChunkKind, MessageHeader, MessageType, HEADER_SIZE};

/// Errors from securing or opening chunks.
#[derive(Debug, Clone, PartialEq)]
pub enum SecureError {
    /// Binary-codec failure.
    Codec(CodecError),
    /// Message signature did not verify.
    BadSignature,
    /// Decryption failed (wrong key or corrupt data).
    DecryptFailed,
    /// The channel lacks key material for the requested operation.
    MissingKeys,
    /// The message uses a different policy than the channel.
    PolicyMismatch,
    /// Nonce has the wrong length for the policy.
    BadNonce,
    /// The peer certificate is required but absent.
    MissingCertificate,
}

impl From<CodecError> for SecureError {
    fn from(e: CodecError) -> Self {
        SecureError::Codec(e)
    }
}

impl std::fmt::Display for SecureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SecureError::Codec(e) => write!(f, "codec error: {e}"),
            SecureError::BadSignature => write!(f, "message signature invalid"),
            SecureError::DecryptFailed => write!(f, "decryption failed"),
            SecureError::MissingKeys => write!(f, "channel has no key material"),
            SecureError::PolicyMismatch => write!(f, "security policy mismatch"),
            SecureError::BadNonce => write!(f, "bad nonce length"),
            SecureError::MissingCertificate => write!(f, "peer certificate missing"),
        }
    }
}

impl std::error::Error for SecureError {}

/// Per-policy symmetric crypto parameters (Part 6 §6.6 profiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyCrypto {
    /// Hash used for P_SHA key derivation and HMAC signing.
    pub kdf_hash: HashAlgorithm,
    /// Symmetric signing key length (bytes).
    pub sig_key_len: usize,
    /// Symmetric encryption key length (bytes; 16 = AES-128, 32 = AES-256).
    pub enc_key_len: usize,
    /// Initialization vector length.
    pub iv_len: usize,
    /// Nonce length each side must contribute.
    pub nonce_len: usize,
}

/// Returns the crypto parameters of `policy`, `None` for the `None`
/// policy.
pub fn policy_crypto(policy: SecurityPolicy) -> Option<PolicyCrypto> {
    match policy {
        SecurityPolicy::None => None,
        SecurityPolicy::Basic128Rsa15 => Some(PolicyCrypto {
            kdf_hash: HashAlgorithm::Sha1,
            sig_key_len: 16,
            enc_key_len: 16,
            iv_len: 16,
            nonce_len: 16,
        }),
        SecurityPolicy::Basic256 => Some(PolicyCrypto {
            kdf_hash: HashAlgorithm::Sha1,
            sig_key_len: 24,
            enc_key_len: 32,
            iv_len: 16,
            nonce_len: 32,
        }),
        SecurityPolicy::Aes128Sha256RsaOaep => Some(PolicyCrypto {
            kdf_hash: HashAlgorithm::Sha256,
            sig_key_len: 32,
            enc_key_len: 16,
            iv_len: 16,
            nonce_len: 32,
        }),
        SecurityPolicy::Basic256Sha256 => Some(PolicyCrypto {
            kdf_hash: HashAlgorithm::Sha256,
            sig_key_len: 32,
            enc_key_len: 32,
            iv_len: 16,
            nonce_len: 32,
        }),
        SecurityPolicy::Aes256Sha256RsaPss => Some(PolicyCrypto {
            kdf_hash: HashAlgorithm::Sha256,
            sig_key_len: 32,
            enc_key_len: 32,
            iv_len: 16,
            nonce_len: 32,
        }),
    }
}

/// Maps policy-level hash names to concrete algorithms.
pub fn hash_for(policy_hash: PolicyHash) -> HashAlgorithm {
    match policy_hash {
        PolicyHash::Md5 => HashAlgorithm::Md5,
        PolicyHash::Sha1 => HashAlgorithm::Sha1,
        PolicyHash::Sha256 => HashAlgorithm::Sha256,
    }
}

/// One side's symmetric key set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivedKeys {
    /// HMAC signing key.
    pub signing: Vec<u8>,
    /// AES encryption key.
    pub encryption: Vec<u8>,
    /// CBC initialization vector.
    pub iv: Vec<u8>,
}

/// Derives one side's keys per Part 6 §6.7.5: the *remote* nonce is the
/// P_SHA secret and the *local* nonce the seed for keys protecting
/// locally-sent messages.
pub fn derive_keys(policy: SecurityPolicy, secret: &[u8], seed: &[u8]) -> Option<DerivedKeys> {
    let params = policy_crypto(policy)?;
    let total = params.sig_key_len + params.enc_key_len + params.iv_len;
    let material = p_sha(params.kdf_hash, secret, seed, total);
    let (sig, rest) = material.split_at(params.sig_key_len);
    let (enc, iv) = rest.split_at(params.enc_key_len);
    Some(DerivedKeys {
        signing: sig.to_vec(),
        encryption: enc.to_vec(),
        iv: iv.to_vec(),
    })
}

/// The sequence header preceding every chunk body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequenceHeader {
    /// Monotonically increasing per-channel sequence number.
    pub sequence_number: u32,
    /// Correlates chunks of one request/response.
    pub request_id: u32,
}

impl UaEncode for SequenceHeader {
    fn encode(&self, w: &mut Encoder) {
        w.u32(self.sequence_number);
        w.u32(self.request_id);
    }
}

impl UaDecode for SequenceHeader {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(SequenceHeader {
            sequence_number: r.u32()?,
            request_id: r.u32()?,
        })
    }
}

/// Asymmetric security header of `OPN` chunks.
#[derive(Debug, Clone, PartialEq)]
pub struct AsymmetricSecurityHeader {
    /// Security policy URI.
    pub security_policy_uri: String,
    /// Sender certificate (serialized), absent for policy None.
    pub sender_certificate: Option<Vec<u8>>,
    /// SHA-1 thumbprint of the receiver certificate, absent for None.
    pub receiver_certificate_thumbprint: Option<Vec<u8>>,
}

impl UaEncode for AsymmetricSecurityHeader {
    fn encode(&self, w: &mut Encoder) {
        w.string(Some(&self.security_policy_uri));
        w.byte_string(self.sender_certificate.as_deref());
        w.byte_string(self.receiver_certificate_thumbprint.as_deref());
    }
}

impl UaDecode for AsymmetricSecurityHeader {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(AsymmetricSecurityHeader {
            security_policy_uri: r
                .string()?
                .ok_or(CodecError::Invalid("null security policy URI"))?,
            sender_certificate: r.byte_string()?,
            receiver_certificate_thumbprint: r.byte_string()?,
        })
    }
}

// ---------------------------------------------------------------------------
// Symmetric (MSG/CLO) chunks
// ---------------------------------------------------------------------------

/// Builds a secured `MSG`/`CLO` chunk.
///
/// Layout: `header(8) | channel_id(4) | token_id(4) | seq(8) | body`
/// with HMAC appended (Sign/SignAndEncrypt) and `seq..` encrypted
/// (SignAndEncrypt).
#[allow(clippy::too_many_arguments)]
pub fn seal_symmetric(
    policy: SecurityPolicy,
    mode: MessageSecurityMode,
    keys: Option<&DerivedKeys>,
    message_type: MessageType,
    chunk: ChunkKind,
    channel_id: u32,
    token_id: u32,
    seq: SequenceHeader,
    body: &[u8],
) -> Result<Vec<u8>, SecureError> {
    // The plaintext is seq || body; it is encoded directly into the
    // output frame (no staging buffer) and the header size patched in
    // afterwards — one allocation per sealed chunk for None/Sign.
    let write_frame = |w: &mut Encoder, total: usize| {
        MessageHeader {
            message_type,
            chunk,
            size: total as u32,
        }
        .encode(w);
        w.u32(channel_id);
        w.u32(token_id);
    };

    match mode {
        MessageSecurityMode::None | MessageSecurityMode::Invalid => {
            let total = HEADER_SIZE + 8 + 8 + body.len();
            let mut w = Encoder::with_capacity(total);
            write_frame(&mut w, total);
            seq.encode(&mut w);
            w.raw(body);
            Ok(w.finish())
        }
        MessageSecurityMode::Sign => {
            let keys = keys.ok_or(SecureError::MissingKeys)?;
            let params = policy_crypto(policy).ok_or(SecureError::PolicyMismatch)?;
            let sig_len = params.kdf_hash.digest_len();
            let total = HEADER_SIZE + 8 + 8 + body.len() + sig_len;
            let mut w = Encoder::with_capacity(total);
            write_frame(&mut w, total);
            seq.encode(&mut w);
            w.raw(body);
            let sig = hmac(params.kdf_hash, &keys.signing, w.as_bytes());
            w.raw(&sig);
            Ok(w.finish())
        }
        MessageSecurityMode::SignAndEncrypt => {
            let keys = keys.ok_or(SecureError::MissingKeys)?;
            let params = policy_crypto(policy).ok_or(SecureError::PolicyMismatch)?;
            let sig_len = params.kdf_hash.digest_len();
            let plain_len = 8 + body.len();
            // PKCS#7 pads to the next 16-byte boundary, always adding 1–16.
            let enc_len = ((plain_len + sig_len) / 16 + 1) * 16;
            let total = HEADER_SIZE + 8 + enc_len;
            let mut w = Encoder::with_capacity(HEADER_SIZE + 8 + plain_len.max(enc_len));
            write_frame(&mut w, total);
            seq.encode(&mut w);
            w.raw(body);
            let sig = hmac(params.kdf_hash, &keys.signing, w.as_bytes());

            let mut to_encrypt = Vec::with_capacity(plain_len + sig_len);
            to_encrypt.extend_from_slice(&w.as_bytes()[HEADER_SIZE + 8..]);
            to_encrypt.extend_from_slice(&sig);
            let ciphertext = cbc_encrypt(&keys.encryption, &keys.iv, &to_encrypt)
                .map_err(|_| SecureError::DecryptFailed)?;
            debug_assert_eq!(ciphertext.len(), enc_len);

            // Reuse the frame buffer for the encrypted output.
            w.reset();
            write_frame(&mut w, total);
            w.raw(&ciphertext);
            Ok(w.finish())
        }
    }
}

/// A verified, decrypted chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenedChunk {
    /// Message type (MSG/CLO/OPN).
    pub message_type: MessageType,
    /// Chunk continuation marker.
    pub chunk: ChunkKind,
    /// Secure channel id from the wire.
    pub channel_id: u32,
    /// Token id (symmetric) — zero for OPN chunks.
    pub token_id: u32,
    /// Sequence header.
    pub sequence: SequenceHeader,
    /// Decrypted service payload.
    pub body: Vec<u8>,
}

/// Verifies and decrypts a symmetric chunk produced by [`seal_symmetric`].
pub fn open_symmetric(
    policy: SecurityPolicy,
    mode: MessageSecurityMode,
    keys: Option<&DerivedKeys>,
    raw: &[u8],
) -> Result<OpenedChunk, SecureError> {
    let mut r = Decoder::new(raw);
    let header = MessageHeader::decode(&mut r)?;
    if header.size as usize != raw.len() {
        return Err(SecureError::Codec(CodecError::BadLength(
            header.size as i64,
        )));
    }
    let channel_id = r.u32()?;
    let token_id = r.u32()?;
    let rest = r.raw(r.remaining())?;

    let (plaintext, verify_sig): (Vec<u8>, bool) = match mode {
        MessageSecurityMode::None | MessageSecurityMode::Invalid => (rest.to_vec(), false),
        MessageSecurityMode::Sign => (rest.to_vec(), true),
        MessageSecurityMode::SignAndEncrypt => {
            let keys = keys.ok_or(SecureError::MissingKeys)?;
            let pt = cbc_decrypt(&keys.encryption, &keys.iv, rest)
                .map_err(|_| SecureError::DecryptFailed)?;
            (pt, true)
        }
    };

    let (content, signature) = if verify_sig {
        let params = policy_crypto(policy).ok_or(SecureError::PolicyMismatch)?;
        let sig_len = params.kdf_hash.digest_len();
        if plaintext.len() < sig_len + 8 {
            return Err(SecureError::Codec(CodecError::UnexpectedEof));
        }
        let (content, sig) = plaintext.split_at(plaintext.len() - sig_len);
        (content.to_vec(), Some(sig.to_vec()))
    } else {
        (plaintext, None)
    };

    if let Some(sig) = signature {
        let keys = keys.ok_or(SecureError::MissingKeys)?;
        let params = policy_crypto(policy).ok_or(SecureError::PolicyMismatch)?;
        // Reconstruct the signed bytes: header + ids + content.
        let mut signed = Encoder::new();
        header.encode(&mut signed);
        signed.u32(channel_id);
        signed.u32(token_id);
        signed.raw(&content);
        let expected = hmac(params.kdf_hash, &keys.signing, signed.as_bytes());
        if expected != sig {
            return Err(SecureError::BadSignature);
        }
    }

    let mut cr = Decoder::new(&content);
    let sequence = SequenceHeader::decode(&mut cr)?;
    let body = cr.raw(cr.remaining())?.to_vec();
    Ok(OpenedChunk {
        message_type: header.message_type,
        chunk: header.chunk,
        channel_id,
        token_id,
        sequence,
        body,
    })
}

// ---------------------------------------------------------------------------
// Asymmetric (OPN) chunks
// ---------------------------------------------------------------------------

/// Builds a secured `OPN` chunk.
///
/// For policies other than `None` the chunk is signed with
/// `sender_key` (hash per policy) and encrypted against
/// `receiver_cert`'s public key in PKCS#1 blocks.
#[allow(clippy::too_many_arguments)]
pub fn seal_asymmetric<R: rand::Rng + ?Sized>(
    rng: &mut R,
    policy: SecurityPolicy,
    sender_key: Option<&RsaPrivateKey>,
    sender_cert_der: Option<&[u8]>,
    receiver_cert: Option<&Certificate>,
    channel_id: u32,
    seq: SequenceHeader,
    body: &[u8],
) -> Result<Vec<u8>, SecureError> {
    let sec_header = AsymmetricSecurityHeader {
        security_policy_uri: policy.uri().to_string(),
        sender_certificate: sender_cert_der.map(<[u8]>::to_vec),
        receiver_certificate_thumbprint: receiver_cert.map(|c| c.thumbprint().to_vec()),
    };
    let mut sec_w = Encoder::new();
    sec_header.encode(&mut sec_w);
    let sec_bytes = sec_w.finish();

    let mut plain = Encoder::new();
    seq.encode(&mut plain);
    plain.raw(body);
    let plaintext = plain.finish();

    if policy == SecurityPolicy::None {
        let total = HEADER_SIZE + 4 + sec_bytes.len() + plaintext.len();
        let mut w = Encoder::new();
        MessageHeader {
            message_type: MessageType::Open,
            chunk: ChunkKind::Final,
            size: total as u32,
        }
        .encode(&mut w);
        w.u32(channel_id);
        w.raw(&sec_bytes);
        w.raw(&plaintext);
        return Ok(w.finish());
    }

    let sender_key = sender_key.ok_or(SecureError::MissingKeys)?;
    let receiver = receiver_cert.ok_or(SecureError::MissingCertificate)?;
    let sig_hash = hash_for(policy.signature_hash().ok_or(SecureError::PolicyMismatch)?);
    let sig_len = sender_key.public.modulus_len();
    let k = receiver.tbs.public_key.modulus_len();
    let block_plain = k - 11;
    let padded_len = plaintext.len() + sig_len;
    let blocks = padded_len.div_ceil(block_plain);
    let enc_len = blocks * k;
    let total = HEADER_SIZE + 4 + sec_bytes.len() + enc_len;

    // Sign over header + channel + security header + plaintext.
    let mut signed = Encoder::new();
    MessageHeader {
        message_type: MessageType::Open,
        chunk: ChunkKind::Final,
        size: total as u32,
    }
    .encode(&mut signed);
    signed.u32(channel_id);
    signed.raw(&sec_bytes);
    signed.raw(&plaintext);
    let signature = sender_key.sign(sig_hash, signed.as_bytes());
    debug_assert_eq!(signature.len(), sig_len);

    // Encrypt plaintext || signature in RSA blocks.
    let mut to_encrypt = plaintext;
    to_encrypt.extend_from_slice(&signature);
    let mut ciphertext = Vec::with_capacity(enc_len);
    for chunk in to_encrypt.chunks(block_plain) {
        let block = receiver
            .tbs
            .public_key
            .encrypt(rng, chunk)
            .map_err(|_| SecureError::DecryptFailed)?;
        ciphertext.extend_from_slice(&block);
    }
    debug_assert_eq!(ciphertext.len(), enc_len);

    let mut w = Encoder::new();
    MessageHeader {
        message_type: MessageType::Open,
        chunk: ChunkKind::Final,
        size: total as u32,
    }
    .encode(&mut w);
    w.u32(channel_id);
    w.raw(&sec_bytes);
    w.raw(&ciphertext);
    Ok(w.finish())
}

/// Result of opening an `OPN` chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenedAsymmetric {
    /// The verified chunk.
    pub opened: OpenedChunk,
    /// The asymmetric header (policy URI, sender certificate,
    /// receiver thumbprint).
    pub security_header: AsymmetricSecurityHeader,
    /// Parsed sender certificate, when present and parseable.
    pub sender_certificate: Option<Certificate>,
}

/// Verifies and decrypts an `OPN` chunk. `local_key` decrypts (required
/// unless the policy is None); the signature is checked against the
/// embedded sender certificate.
pub fn open_asymmetric(
    local_key: Option<&RsaPrivateKey>,
    raw: &[u8],
) -> Result<OpenedAsymmetric, SecureError> {
    let mut r = Decoder::new(raw);
    let header = MessageHeader::decode(&mut r)?;
    if header.size as usize != raw.len() {
        return Err(SecureError::Codec(CodecError::BadLength(
            header.size as i64,
        )));
    }
    let channel_id = r.u32()?;
    let sec_header = AsymmetricSecurityHeader::decode(&mut r)?;
    let policy = SecurityPolicy::from_uri(&sec_header.security_policy_uri)
        .ok_or(SecureError::PolicyMismatch)?;
    let rest = r.raw(r.remaining())?;

    if policy == SecurityPolicy::None {
        let mut cr = Decoder::new(rest);
        let sequence = SequenceHeader::decode(&mut cr)?;
        let body = cr.raw(cr.remaining())?.to_vec();
        return Ok(OpenedAsymmetric {
            opened: OpenedChunk {
                message_type: header.message_type,
                chunk: header.chunk,
                channel_id,
                token_id: 0,
                sequence,
                body,
            },
            security_header: sec_header,
            sender_certificate: None,
        });
    }

    let local_key = local_key.ok_or(SecureError::MissingKeys)?;
    let sender_cert_der = sec_header
        .sender_certificate
        .as_deref()
        .ok_or(SecureError::MissingCertificate)?;
    let sender_cert =
        Certificate::from_der(sender_cert_der).map_err(|_| SecureError::MissingCertificate)?;

    // Decrypt the RSA blocks.
    let k = local_key.public.modulus_len();
    if rest.is_empty() || rest.len() % k != 0 {
        return Err(SecureError::DecryptFailed);
    }
    let mut plaintext = Vec::with_capacity(rest.len());
    for block in rest.chunks(k) {
        let pt = local_key
            .decrypt(block)
            .map_err(|_| SecureError::DecryptFailed)?;
        plaintext.extend_from_slice(&pt);
    }

    // Split off the signature (sender modulus length).
    let sig_len = sender_cert.tbs.public_key.modulus_len();
    if plaintext.len() < sig_len + 8 {
        return Err(SecureError::DecryptFailed);
    }
    let (content, signature) = plaintext.split_at(plaintext.len() - sig_len);

    // Verify against the reconstructed signed bytes.
    let sig_hash = hash_for(policy.signature_hash().ok_or(SecureError::PolicyMismatch)?);
    let mut sec_w = Encoder::new();
    sec_header.encode(&mut sec_w);
    let mut signed = Encoder::new();
    header.encode(&mut signed);
    signed.u32(channel_id);
    signed.raw(&sec_w.finish());
    signed.raw(content);
    if !sender_cert
        .tbs
        .public_key
        .verify(sig_hash, signed.as_bytes(), signature)
    {
        return Err(SecureError::BadSignature);
    }

    let mut cr = Decoder::new(content);
    let sequence = SequenceHeader::decode(&mut cr)?;
    let body = cr.raw(cr.remaining())?.to_vec();
    Ok(OpenedAsymmetric {
        opened: OpenedChunk {
            message_type: header.message_type,
            chunk: header.chunk,
            channel_id,
            token_id: 0,
            sequence,
            body,
        },
        security_header: sec_header,
        sender_certificate: Some(sender_cert),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ua_crypto::{CertificateBuilder, DistinguishedName};

    fn keypair(seed: u64) -> (RsaPrivateKey, Certificate) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = RsaPrivateKey::generate(&mut rng, 256, 2048);
        let cert = CertificateBuilder::new(DistinguishedName::new("peer", "Test"))
            .application_uri("urn:test:peer")
            .self_signed(HashAlgorithm::Sha256, &key);
        (key, cert)
    }

    fn seq() -> SequenceHeader {
        SequenceHeader {
            sequence_number: 1,
            request_id: 1,
        }
    }

    #[test]
    fn key_derivation_is_symmetric_and_policy_dependent() {
        let client_nonce = vec![1u8; 32];
        let server_nonce = vec![2u8; 32];
        let a = derive_keys(SecurityPolicy::Basic256Sha256, &server_nonce, &client_nonce).unwrap();
        let b = derive_keys(SecurityPolicy::Basic256Sha256, &server_nonce, &client_nonce).unwrap();
        assert_eq!(a, b);
        let c = derive_keys(SecurityPolicy::Basic256, &server_nonce, &client_nonce).unwrap();
        assert_ne!(a.signing, c.signing);
        assert_eq!(a.signing.len(), 32);
        assert_eq!(c.signing.len(), 24);
        assert!(derive_keys(SecurityPolicy::None, &server_nonce, &client_nonce).is_none());
    }

    #[test]
    fn symmetric_none_roundtrip() {
        let raw = seal_symmetric(
            SecurityPolicy::None,
            MessageSecurityMode::None,
            None,
            MessageType::Msg,
            ChunkKind::Final,
            7,
            0,
            seq(),
            b"payload",
        )
        .unwrap();
        let opened =
            open_symmetric(SecurityPolicy::None, MessageSecurityMode::None, None, &raw).unwrap();
        assert_eq!(opened.body, b"payload");
        assert_eq!(opened.channel_id, 7);
        assert_eq!(opened.sequence, seq());
    }

    #[test]
    fn symmetric_sign_roundtrip_and_tamper() {
        let keys = derive_keys(SecurityPolicy::Basic256Sha256, &[1; 32], &[2; 32]).unwrap();
        let raw = seal_symmetric(
            SecurityPolicy::Basic256Sha256,
            MessageSecurityMode::Sign,
            Some(&keys),
            MessageType::Msg,
            ChunkKind::Final,
            7,
            3,
            seq(),
            b"signed payload",
        )
        .unwrap();
        let opened = open_symmetric(
            SecurityPolicy::Basic256Sha256,
            MessageSecurityMode::Sign,
            Some(&keys),
            &raw,
        )
        .unwrap();
        assert_eq!(opened.body, b"signed payload");
        assert_eq!(opened.token_id, 3);

        let mut tampered = raw.clone();
        let n = tampered.len();
        tampered[n - 25] ^= 0x01; // flip a payload byte
        assert_eq!(
            open_symmetric(
                SecurityPolicy::Basic256Sha256,
                MessageSecurityMode::Sign,
                Some(&keys),
                &tampered,
            )
            .unwrap_err(),
            SecureError::BadSignature
        );
    }

    #[test]
    fn symmetric_encrypt_roundtrip_and_confidentiality() {
        for policy in [
            SecurityPolicy::Basic128Rsa15,
            SecurityPolicy::Basic256,
            SecurityPolicy::Aes128Sha256RsaOaep,
            SecurityPolicy::Basic256Sha256,
            SecurityPolicy::Aes256Sha256RsaPss,
        ] {
            let keys = derive_keys(policy, &[3; 32], &[4; 32]).unwrap();
            let secret = b"rSetFillLevel=93.5";
            let raw = seal_symmetric(
                policy,
                MessageSecurityMode::SignAndEncrypt,
                Some(&keys),
                MessageType::Msg,
                ChunkKind::Final,
                1,
                1,
                seq(),
                secret,
            )
            .unwrap();
            // The plaintext must not be visible on the wire.
            assert!(
                !raw.windows(secret.len()).any(|w| w == secret),
                "policy {policy:?} leaked plaintext"
            );
            let opened = open_symmetric(
                policy,
                MessageSecurityMode::SignAndEncrypt,
                Some(&keys),
                &raw,
            )
            .unwrap();
            assert_eq!(opened.body, secret, "policy {policy:?}");
        }
    }

    #[test]
    fn symmetric_wrong_keys_fail() {
        let keys = derive_keys(SecurityPolicy::Basic256Sha256, &[1; 32], &[2; 32]).unwrap();
        let wrong = derive_keys(SecurityPolicy::Basic256Sha256, &[9; 32], &[2; 32]).unwrap();
        let raw = seal_symmetric(
            SecurityPolicy::Basic256Sha256,
            MessageSecurityMode::SignAndEncrypt,
            Some(&keys),
            MessageType::Msg,
            ChunkKind::Final,
            1,
            1,
            seq(),
            b"x",
        )
        .unwrap();
        assert!(open_symmetric(
            SecurityPolicy::Basic256Sha256,
            MessageSecurityMode::SignAndEncrypt,
            Some(&wrong),
            &raw,
        )
        .is_err());
    }

    #[test]
    fn missing_keys_error() {
        assert_eq!(
            seal_symmetric(
                SecurityPolicy::Basic256Sha256,
                MessageSecurityMode::Sign,
                None,
                MessageType::Msg,
                ChunkKind::Final,
                1,
                1,
                seq(),
                b"x",
            )
            .unwrap_err(),
            SecureError::MissingKeys
        );
    }

    #[test]
    fn asymmetric_none_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let raw = seal_asymmetric(
            &mut rng,
            SecurityPolicy::None,
            None,
            None,
            None,
            0,
            seq(),
            b"open request",
        )
        .unwrap();
        let opened = open_asymmetric(None, &raw).unwrap();
        assert_eq!(opened.opened.body, b"open request");
        assert_eq!(
            opened.security_header.security_policy_uri,
            SecurityPolicy::None.uri()
        );
        assert!(opened.sender_certificate.is_none());
    }

    #[test]
    fn asymmetric_secure_roundtrip() {
        let (client_key, client_cert) = keypair(10);
        let (server_key, server_cert) = keypair(11);
        let mut rng = StdRng::seed_from_u64(2);
        let body = b"open secure channel request with nonce";
        let raw = seal_asymmetric(
            &mut rng,
            SecurityPolicy::Basic256Sha256,
            Some(&client_key),
            Some(&client_cert.to_der()),
            Some(&server_cert),
            0,
            seq(),
            body,
        )
        .unwrap();
        assert!(!raw.windows(body.len()).any(|w| w == body.as_slice()));
        let opened = open_asymmetric(Some(&server_key), &raw).unwrap();
        assert_eq!(opened.opened.body, body);
        let sender = opened.sender_certificate.unwrap();
        assert_eq!(sender.thumbprint(), client_cert.thumbprint());
        assert_eq!(
            opened.security_header.receiver_certificate_thumbprint,
            Some(server_cert.thumbprint().to_vec())
        );
    }

    #[test]
    fn asymmetric_wrong_receiver_key_fails() {
        let (client_key, client_cert) = keypair(12);
        let (_, server_cert) = keypair(13);
        let (other_key, _) = keypair(14);
        let mut rng = StdRng::seed_from_u64(3);
        let raw = seal_asymmetric(
            &mut rng,
            SecurityPolicy::Basic256Sha256,
            Some(&client_key),
            Some(&client_cert.to_der()),
            Some(&server_cert),
            0,
            seq(),
            b"body",
        )
        .unwrap();
        assert!(open_asymmetric(Some(&other_key), &raw).is_err());
    }

    #[test]
    fn asymmetric_tampered_body_fails_signature() {
        let (client_key, client_cert) = keypair(15);
        let (server_key, server_cert) = keypair(16);
        let mut rng = StdRng::seed_from_u64(4);
        let mut raw = seal_asymmetric(
            &mut rng,
            SecurityPolicy::Basic128Rsa15,
            Some(&client_key),
            Some(&client_cert.to_der()),
            Some(&server_cert),
            0,
            seq(),
            b"body",
        )
        .unwrap();
        // Flip a bit inside the sender certificate field (signed region
        // on open, it changes the verification input).
        let pos = raw.len() / 2;
        raw[pos] ^= 0x40;
        assert!(open_asymmetric(Some(&server_key), &raw).is_err());
    }

    #[test]
    fn policy_crypto_parameters() {
        assert!(policy_crypto(SecurityPolicy::None).is_none());
        let p = policy_crypto(SecurityPolicy::Basic128Rsa15).unwrap();
        assert_eq!(p.kdf_hash, HashAlgorithm::Sha1);
        assert_eq!(p.enc_key_len, 16);
        let p = policy_crypto(SecurityPolicy::Aes256Sha256RsaPss).unwrap();
        assert_eq!(p.kdf_hash, HashAlgorithm::Sha256);
        assert_eq!(p.enc_key_len, 32);
    }
}
