//! Message chunking and reassembly (OPC 10000-6 §6.7.2).
//!
//! Large service messages are split into `MSG` chunks marked `C`
//! (intermediate) and `F` (final); `A` aborts an in-flight message. The
//! receiver reassembles bodies in sequence order and enforces the
//! negotiated chunk-count and message-size limits — unbounded reassembly
//! is a classic amplification hazard for a scanner parsing hostile
//! servers.

use crate::secure::{seal_symmetric, DerivedKeys, SecureError, SequenceHeader};
use crate::transport::{ChunkKind, MessageType};
use ua_types::{MessageSecurityMode, SecurityPolicy};

/// Splits a service payload into secured `MSG` chunks.
///
/// `max_body_per_chunk` is the plaintext service bytes per chunk (derived
/// from the negotiated buffer sizes minus header/crypto overhead).
/// Sequence numbers are allocated consecutively starting at
/// `first_sequence_number`.
#[allow(clippy::too_many_arguments)]
pub fn chunk_message(
    policy: SecurityPolicy,
    mode: MessageSecurityMode,
    keys: Option<&DerivedKeys>,
    channel_id: u32,
    token_id: u32,
    first_sequence_number: u32,
    request_id: u32,
    body: &[u8],
    max_body_per_chunk: usize,
) -> Result<Vec<Vec<u8>>, SecureError> {
    assert!(max_body_per_chunk > 0, "chunk body size must be positive");
    let pieces: Vec<&[u8]> = if body.is_empty() {
        vec![&[]]
    } else {
        body.chunks(max_body_per_chunk).collect()
    };
    let mut out = Vec::with_capacity(pieces.len());
    for (i, piece) in pieces.iter().enumerate() {
        let kind = if i + 1 == pieces.len() {
            ChunkKind::Final
        } else {
            ChunkKind::Intermediate
        };
        let seq = SequenceHeader {
            sequence_number: first_sequence_number + i as u32,
            request_id,
        };
        out.push(seal_symmetric(
            policy,
            mode,
            keys,
            MessageType::Msg,
            kind,
            channel_id,
            token_id,
            seq,
            piece,
        )?);
    }
    Ok(out)
}

/// Errors from reassembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReassemblyError {
    /// Chunk sequence number was not the expected successor.
    OutOfOrder {
        /// Expected sequence number.
        expected: u32,
        /// Received sequence number.
        got: u32,
    },
    /// Chunk belongs to a different request than the in-flight one.
    RequestIdMismatch,
    /// More chunks than the negotiated maximum.
    TooManyChunks(usize),
    /// Reassembled size exceeds the negotiated maximum.
    MessageTooLarge(usize),
    /// The sender aborted the message.
    Aborted,
}

impl std::fmt::Display for ReassemblyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReassemblyError::OutOfOrder { expected, got } => {
                write!(f, "out-of-order chunk: expected seq {expected}, got {got}")
            }
            ReassemblyError::RequestIdMismatch => write!(f, "chunk request id mismatch"),
            ReassemblyError::TooManyChunks(n) => write!(f, "too many chunks ({n})"),
            ReassemblyError::MessageTooLarge(n) => write!(f, "message too large ({n} bytes)"),
            ReassemblyError::Aborted => write!(f, "message aborted by sender"),
        }
    }
}

impl std::error::Error for ReassemblyError {}

/// Reassembles chunk bodies into complete messages.
#[derive(Debug)]
pub struct Reassembler {
    max_chunks: usize,
    max_message_size: usize,
    in_flight: Option<InFlight>,
    next_sequence: Option<u32>,
}

#[derive(Debug)]
struct InFlight {
    request_id: u32,
    chunks: usize,
    body: Vec<u8>,
}

/// A fully reassembled message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembledMessage {
    /// The request id all chunks shared.
    pub request_id: u32,
    /// The concatenated service payload.
    pub body: Vec<u8>,
}

impl Reassembler {
    /// Creates a reassembler with the negotiated limits.
    pub fn new(max_chunks: usize, max_message_size: usize) -> Self {
        Reassembler {
            max_chunks,
            max_message_size,
            in_flight: None,
            next_sequence: None,
        }
    }

    /// Feeds one verified chunk; returns a message when the final chunk
    /// arrives.
    pub fn push(
        &mut self,
        kind: ChunkKind,
        seq: SequenceHeader,
        body: &[u8],
    ) -> Result<Option<AssembledMessage>, ReassemblyError> {
        // Sequence continuity across the whole channel.
        if let Some(expected) = self.next_sequence {
            if seq.sequence_number != expected {
                return Err(ReassemblyError::OutOfOrder {
                    expected,
                    got: seq.sequence_number,
                });
            }
        }
        self.next_sequence = Some(seq.sequence_number.wrapping_add(1));

        if kind == ChunkKind::Abort {
            self.in_flight = None;
            return Err(ReassemblyError::Aborted);
        }

        let flight = match &mut self.in_flight {
            Some(flight) => {
                if flight.request_id != seq.request_id {
                    self.in_flight = None;
                    return Err(ReassemblyError::RequestIdMismatch);
                }
                flight
            }
            None => {
                self.in_flight = Some(InFlight {
                    request_id: seq.request_id,
                    chunks: 0,
                    body: Vec::new(),
                });
                // ua-lint: allow(panic-hygiene) -- in_flight was assigned Some on the previous line
                self.in_flight.as_mut().unwrap()
            }
        };

        flight.chunks += 1;
        if flight.chunks > self.max_chunks {
            let n = flight.chunks;
            self.in_flight = None;
            return Err(ReassemblyError::TooManyChunks(n));
        }
        flight.body.extend_from_slice(body);
        if flight.body.len() > self.max_message_size {
            let n = flight.body.len();
            self.in_flight = None;
            return Err(ReassemblyError::MessageTooLarge(n));
        }

        if kind == ChunkKind::Final {
            // ua-lint: allow(panic-hygiene) -- in_flight is Some: this fn either found it or created it above
            let flight = self.in_flight.take().unwrap();
            return Ok(Some(AssembledMessage {
                request_id: flight.request_id,
                body: flight.body,
            }));
        }
        Ok(None)
    }

    /// True when a partial message is buffered.
    pub fn has_partial(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Resets sequence tracking (used after channel renewal).
    pub fn reset(&mut self) {
        self.in_flight = None;
        self.next_sequence = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::secure::open_symmetric;

    fn seq(n: u32, req: u32) -> SequenceHeader {
        SequenceHeader {
            sequence_number: n,
            request_id: req,
        }
    }

    #[test]
    fn single_chunk_roundtrip() {
        let chunks = chunk_message(
            SecurityPolicy::None,
            MessageSecurityMode::None,
            None,
            1,
            0,
            10,
            5,
            b"short",
            1024,
        )
        .unwrap();
        assert_eq!(chunks.len(), 1);
        let opened = open_symmetric(
            SecurityPolicy::None,
            MessageSecurityMode::None,
            None,
            &chunks[0],
        )
        .unwrap();
        assert_eq!(opened.chunk, ChunkKind::Final);
        assert_eq!(opened.body, b"short");
        assert_eq!(opened.sequence.sequence_number, 10);
    }

    #[test]
    fn multi_chunk_roundtrip_through_reassembler() {
        let body: Vec<u8> = (0..1000).map(|i| i as u8).collect();
        let chunks = chunk_message(
            SecurityPolicy::None,
            MessageSecurityMode::None,
            None,
            1,
            0,
            1,
            42,
            &body,
            256,
        )
        .unwrap();
        assert_eq!(chunks.len(), 4);

        let mut ra = Reassembler::new(16, 1 << 20);
        let mut result = None;
        for raw in &chunks {
            let opened =
                open_symmetric(SecurityPolicy::None, MessageSecurityMode::None, None, raw).unwrap();
            if let Some(msg) = ra
                .push(opened.chunk, opened.sequence, &opened.body)
                .unwrap()
            {
                result = Some(msg);
            }
        }
        let msg = result.expect("final chunk completes message");
        assert_eq!(msg.request_id, 42);
        assert_eq!(msg.body, body);
        assert!(!ra.has_partial());
    }

    #[test]
    fn empty_body_produces_one_final_chunk() {
        let chunks = chunk_message(
            SecurityPolicy::None,
            MessageSecurityMode::None,
            None,
            1,
            0,
            1,
            1,
            b"",
            256,
        )
        .unwrap();
        assert_eq!(chunks.len(), 1);
    }

    #[test]
    fn out_of_order_rejected() {
        let mut ra = Reassembler::new(16, 1024);
        ra.push(ChunkKind::Intermediate, seq(1, 1), b"a").unwrap();
        let err = ra.push(ChunkKind::Final, seq(3, 1), b"b").unwrap_err();
        assert_eq!(
            err,
            ReassemblyError::OutOfOrder {
                expected: 2,
                got: 3
            }
        );
    }

    #[test]
    fn request_id_mismatch_rejected() {
        let mut ra = Reassembler::new(16, 1024);
        ra.push(ChunkKind::Intermediate, seq(1, 1), b"a").unwrap();
        let err = ra.push(ChunkKind::Final, seq(2, 9), b"b").unwrap_err();
        assert_eq!(err, ReassemblyError::RequestIdMismatch);
        assert!(!ra.has_partial());
    }

    #[test]
    fn abort_discards_partial() {
        let mut ra = Reassembler::new(16, 1024);
        ra.push(ChunkKind::Intermediate, seq(1, 1), b"a").unwrap();
        assert!(ra.has_partial());
        let err = ra.push(ChunkKind::Abort, seq(2, 1), b"").unwrap_err();
        assert_eq!(err, ReassemblyError::Aborted);
        assert!(!ra.has_partial());
        // Channel continues afterwards.
        let done = ra.push(ChunkKind::Final, seq(3, 2), b"next").unwrap();
        assert_eq!(done.unwrap().body, b"next");
    }

    #[test]
    fn chunk_count_limit_enforced() {
        let mut ra = Reassembler::new(2, 1 << 20);
        ra.push(ChunkKind::Intermediate, seq(1, 1), b"a").unwrap();
        ra.push(ChunkKind::Intermediate, seq(2, 1), b"b").unwrap();
        let err = ra
            .push(ChunkKind::Intermediate, seq(3, 1), b"c")
            .unwrap_err();
        assert_eq!(err, ReassemblyError::TooManyChunks(3));
    }

    #[test]
    fn message_size_limit_enforced() {
        let mut ra = Reassembler::new(100, 10);
        let err = ra
            .push(ChunkKind::Final, seq(1, 1), &[0u8; 11])
            .unwrap_err();
        assert_eq!(err, ReassemblyError::MessageTooLarge(11));
    }

    #[test]
    fn chunking_respects_secured_sizes() {
        // With signing, each chunk carries an HMAC; reassembly must still
        // produce the original body.
        use crate::secure::derive_keys;
        let keys = derive_keys(SecurityPolicy::Basic256Sha256, &[1; 32], &[2; 32]).unwrap();
        let body: Vec<u8> = (0..500).map(|i| (i % 251) as u8).collect();
        let chunks = chunk_message(
            SecurityPolicy::Basic256Sha256,
            MessageSecurityMode::SignAndEncrypt,
            Some(&keys),
            2,
            1,
            1,
            7,
            &body,
            128,
        )
        .unwrap();
        assert!(chunks.len() >= 4);
        let mut ra = Reassembler::new(32, 1 << 20);
        let mut out = None;
        for raw in &chunks {
            let opened = open_symmetric(
                SecurityPolicy::Basic256Sha256,
                MessageSecurityMode::SignAndEncrypt,
                Some(&keys),
                raw,
            )
            .unwrap();
            if let Some(m) = ra
                .push(opened.chunk, opened.sequence, &opened.body)
                .unwrap()
            {
                out = Some(m);
            }
        }
        assert_eq!(out.unwrap().body, body);
    }
}
