//! The `uat-tls` prologue: a deliberately tiny stand-in for a TLS
//! handshake in front of opc.tcp, modeled on the TLS-wrapped IIoT
//! deployments of "Missed Opportunities" (Dahlmanns et al., 2022).
//!
//! The simulation does not re-implement TLS; it reproduces what the
//! *measurement* observes: one handshake round-trip in which the server
//! presents (or fails to present) a certificate, followed by an opaque
//! byte-passthrough carrying ordinary UACP. The prologue is two fixed
//! frames:
//!
//! ```text
//! client → server   "UATLSCH1"                                (8 bytes)
//! server → client   "UATLSSH1" ‖ flags:u8 ‖ cert_len:u32le ‖ cert DER
//! ```
//!
//! `flags` bit 0 ([`FLAG_CERT_PRESENT`]) says whether a certificate
//! follows; servers running without one (a deficit the assessment
//! reports) clear it and send `cert_len = 0`. After the prologue both
//! sides speak plain UACP on the same connection.

use ua_types::CodecError;

/// The client's prologue frame (a stand-in for ClientHello).
pub const CLIENT_HELLO: [u8; 8] = *b"UATLSCH1";

/// Magic prefix of the server's prologue reply (ServerHello +
/// Certificate in one frame).
pub const SERVER_HELLO: [u8; 8] = *b"UATLSSH1";

/// Flags bit 0: a certificate DER follows the length field.
pub const FLAG_CERT_PRESENT: u8 = 0x01;

/// The parsed server prologue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerHello {
    /// The certificate the server presented, if any (DER).
    pub cert_der: Option<Vec<u8>>,
}

/// Encodes the server's prologue reply.
pub fn encode_server_hello(cert_der: Option<&[u8]>) -> Vec<u8> {
    let mut out = Vec::with_capacity(13 + cert_der.map_or(0, <[u8]>::len));
    out.extend_from_slice(&SERVER_HELLO);
    match cert_der {
        Some(der) => {
            out.push(FLAG_CERT_PRESENT);
            out.extend_from_slice(&(der.len() as u32).to_le_bytes());
            out.extend_from_slice(der);
        }
        None => {
            out.push(0);
            out.extend_from_slice(&0u32.to_le_bytes());
        }
    }
    out
}

/// Decodes the server's prologue reply. The frame must be exact: any
/// trailing bytes mean the peer is not speaking the prologue (UACP data
/// must never be smuggled into it).
pub fn decode_server_hello(data: &[u8]) -> Result<ServerHello, CodecError> {
    if data.len() < 13 || data[..8] != SERVER_HELLO {
        return Err(CodecError::Invalid("not a uat-tls server hello"));
    }
    let flags = data[8];
    let len = u32::from_le_bytes([data[9], data[10], data[11], data[12]]) as usize;
    if data.len() != 13 + len {
        return Err(CodecError::BadLength(len as i64));
    }
    let cert_der = if flags & FLAG_CERT_PRESENT != 0 {
        if len == 0 {
            return Err(CodecError::Invalid("cert flag set but no certificate"));
        }
        Some(data[13..].to_vec())
    } else {
        if len != 0 {
            return Err(CodecError::Invalid("certificate without cert flag"));
        }
        None
    };
    Ok(ServerHello { cert_der })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_cert() {
        let der = vec![0x30, 0x82, 0x01, 0x0a, 0xff];
        let bytes = encode_server_hello(Some(&der));
        let hello = decode_server_hello(&bytes).unwrap();
        assert_eq!(hello.cert_der.as_deref(), Some(der.as_slice()));
    }

    #[test]
    fn roundtrip_without_cert() {
        let bytes = encode_server_hello(None);
        assert_eq!(bytes.len(), 13);
        let hello = decode_server_hello(&bytes).unwrap();
        assert_eq!(hello.cert_der, None);
    }

    #[test]
    fn rejects_wrong_magic_and_bad_lengths() {
        assert!(decode_server_hello(b"GARBAGE!GARBAGE!").is_err());
        assert!(decode_server_hello(&SERVER_HELLO).is_err());
        // Length field longer than the frame.
        let mut bytes = encode_server_hello(Some(&[1, 2, 3]));
        bytes.truncate(bytes.len() - 1);
        assert!(decode_server_hello(&bytes).is_err());
        // Flag/length disagreement both ways.
        let mut bytes = encode_server_hello(Some(&[1]));
        bytes[8] = 0; // cert present on the wire, flag cleared
        assert!(decode_server_hello(&bytes).is_err());
        let mut bytes = encode_server_hello(None);
        bytes[8] = FLAG_CERT_PRESENT; // flag set, no cert
        assert!(decode_server_hello(&bytes).is_err());
    }
}
