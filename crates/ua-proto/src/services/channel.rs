//! OpenSecureChannel / CloseSecureChannel services (Part 4 §5.5).

use super::header::{RequestHeader, ResponseHeader};
use ua_types::{CodecError, Decoder, Encoder, MessageSecurityMode, UaDateTime, UaDecode, UaEncode};

/// Whether a channel token is being issued or renewed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecurityTokenRequestType {
    /// First token on a new channel.
    Issue,
    /// Renewal of an existing channel.
    Renew,
}

impl UaEncode for SecurityTokenRequestType {
    fn encode(&self, w: &mut Encoder) {
        w.u32(match self {
            SecurityTokenRequestType::Issue => 0,
            SecurityTokenRequestType::Renew => 1,
        });
    }
}

impl UaDecode for SecurityTokenRequestType {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match r.u32()? {
            0 => Ok(SecurityTokenRequestType::Issue),
            1 => Ok(SecurityTokenRequestType::Renew),
            other => Err(CodecError::InvalidDiscriminant {
                what: "SecurityTokenRequestType",
                value: other,
            }),
        }
    }
}

/// OpenSecureChannelRequest.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenSecureChannelRequest {
    /// Common header.
    pub request_header: RequestHeader,
    /// Client protocol version.
    pub client_protocol_version: u32,
    /// Issue or renew.
    pub request_type: SecurityTokenRequestType,
    /// Requested message security mode.
    pub security_mode: MessageSecurityMode,
    /// Client nonce for key derivation (null for mode None).
    pub client_nonce: Option<Vec<u8>>,
    /// Requested token lifetime in milliseconds.
    pub requested_lifetime: u32,
}

impl UaEncode for OpenSecureChannelRequest {
    fn encode(&self, w: &mut Encoder) {
        self.request_header.encode(w);
        w.u32(self.client_protocol_version);
        self.request_type.encode(w);
        self.security_mode.encode(w);
        w.byte_string(self.client_nonce.as_deref());
        w.u32(self.requested_lifetime);
    }
}

impl UaDecode for OpenSecureChannelRequest {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(OpenSecureChannelRequest {
            request_header: RequestHeader::decode(r)?,
            client_protocol_version: r.u32()?,
            request_type: SecurityTokenRequestType::decode(r)?,
            security_mode: MessageSecurityMode::decode(r)?,
            client_nonce: r.byte_string()?,
            requested_lifetime: r.u32()?,
        })
    }
}

/// A channel security token identifying channel + key generation.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelSecurityToken {
    /// Secure channel id assigned by the server.
    pub channel_id: u32,
    /// Token id (increments on renew).
    pub token_id: u32,
    /// Creation timestamp.
    pub created_at: UaDateTime,
    /// Granted lifetime in milliseconds.
    pub revised_lifetime: u32,
}

impl UaEncode for ChannelSecurityToken {
    fn encode(&self, w: &mut Encoder) {
        w.u32(self.channel_id);
        w.u32(self.token_id);
        self.created_at.encode(w);
        w.u32(self.revised_lifetime);
    }
}

impl UaDecode for ChannelSecurityToken {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(ChannelSecurityToken {
            channel_id: r.u32()?,
            token_id: r.u32()?,
            created_at: UaDateTime::decode(r)?,
            revised_lifetime: r.u32()?,
        })
    }
}

/// OpenSecureChannelResponse.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenSecureChannelResponse {
    /// Common header.
    pub response_header: ResponseHeader,
    /// Server protocol version.
    pub server_protocol_version: u32,
    /// The issued token.
    pub security_token: ChannelSecurityToken,
    /// Server nonce for key derivation.
    pub server_nonce: Option<Vec<u8>>,
}

impl UaEncode for OpenSecureChannelResponse {
    fn encode(&self, w: &mut Encoder) {
        self.response_header.encode(w);
        w.u32(self.server_protocol_version);
        self.security_token.encode(w);
        w.byte_string(self.server_nonce.as_deref());
    }
}

impl UaDecode for OpenSecureChannelResponse {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(OpenSecureChannelResponse {
            response_header: ResponseHeader::decode(r)?,
            server_protocol_version: r.u32()?,
            security_token: ChannelSecurityToken::decode(r)?,
            server_nonce: r.byte_string()?,
        })
    }
}

/// CloseSecureChannelRequest (no response is sent).
#[derive(Debug, Clone, PartialEq)]
pub struct CloseSecureChannelRequest {
    /// Common header.
    pub request_header: RequestHeader,
}

impl UaEncode for CloseSecureChannelRequest {
    fn encode(&self, w: &mut Encoder) {
        self.request_header.encode(w);
    }
}

impl UaDecode for CloseSecureChannelRequest {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(CloseSecureChannelRequest {
            request_header: RequestHeader::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_types::NodeId;

    #[test]
    fn open_request_roundtrip() {
        let req = OpenSecureChannelRequest {
            request_header: RequestHeader::new(NodeId::NULL, 1, UaDateTime::from_unix_seconds(0)),
            client_protocol_version: 0,
            request_type: SecurityTokenRequestType::Issue,
            security_mode: MessageSecurityMode::SignAndEncrypt,
            client_nonce: Some(vec![7; 32]),
            requested_lifetime: 3_600_000,
        };
        let bytes = req.encode_to_vec();
        assert_eq!(OpenSecureChannelRequest::decode_all(&bytes).unwrap(), req);
    }

    #[test]
    fn open_response_roundtrip() {
        let resp = OpenSecureChannelResponse {
            response_header: ResponseHeader::good(1, UaDateTime::from_unix_seconds(0)),
            server_protocol_version: 0,
            security_token: ChannelSecurityToken {
                channel_id: 42,
                token_id: 1,
                created_at: UaDateTime::from_unix_seconds(1_600_000_000),
                revised_lifetime: 600_000,
            },
            server_nonce: Some(vec![9; 32]),
        };
        let bytes = resp.encode_to_vec();
        assert_eq!(OpenSecureChannelResponse::decode_all(&bytes).unwrap(), resp);
    }

    #[test]
    fn request_type_invalid() {
        assert!(SecurityTokenRequestType::decode_all(&5u32.to_le_bytes()).is_err());
    }

    #[test]
    fn close_request_roundtrip() {
        let req = CloseSecureChannelRequest {
            request_header: RequestHeader::new(NodeId::NULL, 3, UaDateTime::from_unix_seconds(0)),
        };
        let bytes = req.encode_to_vec();
        assert_eq!(CloseSecureChannelRequest::decode_all(&bytes).unwrap(), req);
    }
}
