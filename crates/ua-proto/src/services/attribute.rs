//! Attribute services: Read and Write (Part 4 §5.10). The scanner reads
//! `UserAccessLevel`/`UserExecutable` on every node to quantify anonymous
//! access (Figure 7); it *never* writes (Appendix A.1) — but the Write
//! service is implemented because the servers support it and the threat
//! analysis is about what an attacker *could* do.

use super::header::{
    decode_null_diagnostics, encode_null_diagnostics, RequestHeader, ResponseHeader,
};
use ua_types::{
    CodecError, DataValue, Decoder, Encoder, NodeId, QualifiedName, StatusCode, UaDecode, UaEncode,
};

/// Selects a node attribute to read.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadValueId {
    /// The node.
    pub node_id: NodeId,
    /// Attribute id (see [`ua_types::AttributeId`]).
    pub attribute_id: u32,
    /// Index range into array values (unused).
    pub index_range: Option<String>,
    /// Data encoding (default binary).
    pub data_encoding: QualifiedName,
}

impl ReadValueId {
    /// Reads `attribute_id` of `node_id`.
    pub fn new(node_id: NodeId, attribute_id: u32) -> Self {
        ReadValueId {
            node_id,
            attribute_id,
            index_range: None,
            data_encoding: QualifiedName::default(),
        }
    }
}

impl UaEncode for ReadValueId {
    fn encode(&self, w: &mut Encoder) {
        self.node_id.encode(w);
        w.u32(self.attribute_id);
        w.string(self.index_range.as_deref());
        self.data_encoding.encode(w);
    }
}

impl UaDecode for ReadValueId {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(ReadValueId {
            node_id: NodeId::decode(r)?,
            attribute_id: r.u32()?,
            index_range: r.string()?,
            data_encoding: QualifiedName::decode(r)?,
        })
    }
}

/// ReadRequest.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadRequest {
    /// Common header.
    pub request_header: RequestHeader,
    /// Maximum acceptable value age in milliseconds.
    pub max_age: f64,
    /// Which timestamps to return (0 = source, 3 = neither).
    pub timestamps_to_return: u32,
    /// The attributes to read.
    pub nodes_to_read: Vec<ReadValueId>,
}

impl UaEncode for ReadRequest {
    fn encode(&self, w: &mut Encoder) {
        self.request_header.encode(w);
        w.f64(self.max_age);
        w.u32(self.timestamps_to_return);
        w.array(&self.nodes_to_read, |w, n| n.encode(w));
    }
}

impl UaDecode for ReadRequest {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(ReadRequest {
            request_header: RequestHeader::decode(r)?,
            max_age: r.f64()?,
            timestamps_to_return: r.u32()?,
            nodes_to_read: r.array(ReadValueId::decode)?,
        })
    }
}

/// ReadResponse.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadResponse {
    /// Common header.
    pub response_header: ResponseHeader,
    /// One `DataValue` per requested attribute, in order.
    pub results: Vec<DataValue>,
}

impl UaEncode for ReadResponse {
    fn encode(&self, w: &mut Encoder) {
        self.response_header.encode(w);
        w.array(&self.results, |w, v| v.encode(w));
        encode_null_diagnostics(w);
    }
}

impl UaDecode for ReadResponse {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let response_header = ResponseHeader::decode(r)?;
        let results = r.array(DataValue::decode)?;
        decode_null_diagnostics(r)?;
        Ok(ReadResponse {
            response_header,
            results,
        })
    }
}

/// One write operation.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteValue {
    /// The node.
    pub node_id: NodeId,
    /// Attribute id (13 = Value).
    pub attribute_id: u32,
    /// Index range (unused).
    pub index_range: Option<String>,
    /// The value to write.
    pub value: DataValue,
}

impl UaEncode for WriteValue {
    fn encode(&self, w: &mut Encoder) {
        self.node_id.encode(w);
        w.u32(self.attribute_id);
        w.string(self.index_range.as_deref());
        self.value.encode(w);
    }
}

impl UaDecode for WriteValue {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(WriteValue {
            node_id: NodeId::decode(r)?,
            attribute_id: r.u32()?,
            index_range: r.string()?,
            value: DataValue::decode(r)?,
        })
    }
}

/// WriteRequest.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteRequest {
    /// Common header.
    pub request_header: RequestHeader,
    /// The writes to perform.
    pub nodes_to_write: Vec<WriteValue>,
}

impl UaEncode for WriteRequest {
    fn encode(&self, w: &mut Encoder) {
        self.request_header.encode(w);
        w.array(&self.nodes_to_write, |w, n| n.encode(w));
    }
}

impl UaDecode for WriteRequest {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(WriteRequest {
            request_header: RequestHeader::decode(r)?,
            nodes_to_write: r.array(WriteValue::decode)?,
        })
    }
}

/// WriteResponse.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteResponse {
    /// Common header.
    pub response_header: ResponseHeader,
    /// Per-write status.
    pub results: Vec<StatusCode>,
}

impl UaEncode for WriteResponse {
    fn encode(&self, w: &mut Encoder) {
        self.response_header.encode(w);
        w.array(&self.results, |w, s| s.encode(w));
        encode_null_diagnostics(w);
    }
}

impl UaDecode for WriteResponse {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let response_header = ResponseHeader::decode(r)?;
        let results = r.array(StatusCode::decode)?;
        decode_null_diagnostics(r)?;
        Ok(WriteResponse {
            response_header,
            results,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_types::{UaDateTime, Variant};

    fn header() -> RequestHeader {
        RequestHeader::new(NodeId::numeric(0, 7), 5, UaDateTime::from_unix_seconds(0))
    }

    #[test]
    fn read_roundtrip() {
        let req = ReadRequest {
            request_header: header(),
            max_age: 0.0,
            timestamps_to_return: 3,
            nodes_to_read: vec![
                ReadValueId::new(NodeId::string(2, "m3InflowPerHour"), 13),
                ReadValueId::new(NodeId::string(2, "m3InflowPerHour"), 18),
            ],
        };
        let bytes = req.encode_to_vec();
        assert_eq!(ReadRequest::decode_all(&bytes).unwrap(), req);

        let resp = ReadResponse {
            response_header: ResponseHeader::good(5, UaDateTime::from_unix_seconds(0)),
            results: vec![
                DataValue::new(Variant::Double(12.5)),
                DataValue::error(StatusCode::BAD_NOT_READABLE),
            ],
        };
        let bytes = resp.encode_to_vec();
        assert_eq!(ReadResponse::decode_all(&bytes).unwrap(), resp);
    }

    #[test]
    fn write_roundtrip() {
        let req = WriteRequest {
            request_header: header(),
            nodes_to_write: vec![WriteValue {
                node_id: NodeId::string(2, "rSetFillLevel"),
                attribute_id: 13,
                index_range: None,
                value: DataValue::new(Variant::Float(80.0)),
            }],
        };
        let bytes = req.encode_to_vec();
        assert_eq!(WriteRequest::decode_all(&bytes).unwrap(), req);

        let resp = WriteResponse {
            response_header: ResponseHeader::good(5, UaDateTime::from_unix_seconds(0)),
            results: vec![StatusCode::BAD_NOT_WRITABLE],
        };
        let bytes = resp.encode_to_vec();
        assert_eq!(WriteResponse::decode_all(&bytes).unwrap(), resp);
    }
}
