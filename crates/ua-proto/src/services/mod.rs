//! OPC UA service messages: typed request/response structures and the
//! [`ServiceBody`] dispatcher that maps wire type-ids to them.

pub mod attribute;
pub mod channel;
pub mod discovery;
pub mod header;
pub mod method;
pub mod session;
pub mod view;

pub use attribute::{
    ReadRequest, ReadResponse, ReadValueId, WriteRequest, WriteResponse, WriteValue,
};
pub use channel::{
    ChannelSecurityToken, CloseSecureChannelRequest, OpenSecureChannelRequest,
    OpenSecureChannelResponse, SecurityTokenRequestType,
};
pub use discovery::{
    FindServersRequest, FindServersResponse, GetEndpointsRequest, GetEndpointsResponse,
};
pub use header::{DiagnosticInfo, RequestHeader, ResponseHeader, SignatureData};
pub use method::{CallMethodRequest, CallMethodResult, CallRequest, CallResponse};
pub use session::{
    ActivateSessionRequest, ActivateSessionResponse, CloseSessionRequest, CloseSessionResponse,
    CreateSessionRequest, CreateSessionResponse, IdentityToken,
};
pub use view::{
    BrowseDescription, BrowseNextRequest, BrowseNextResponse, BrowseRequest, BrowseResponse,
    BrowseResult, ReferenceDescription, ViewDescription,
};

use ua_types::{CodecError, Decoder, Encoder, NodeId, StatusCode, UaDecode, UaEncode};

/// Binary-encoding node ids (namespace 0) of the supported services, per
/// OPC 10000-6 Annex A.
pub mod ids {
    /// ServiceFault.
    pub const SERVICE_FAULT: u32 = 397;
    /// FindServersRequest.
    pub const FIND_SERVERS_REQUEST: u32 = 422;
    /// FindServersResponse.
    pub const FIND_SERVERS_RESPONSE: u32 = 425;
    /// GetEndpointsRequest.
    pub const GET_ENDPOINTS_REQUEST: u32 = 428;
    /// GetEndpointsResponse.
    pub const GET_ENDPOINTS_RESPONSE: u32 = 431;
    /// OpenSecureChannelRequest.
    pub const OPEN_SECURE_CHANNEL_REQUEST: u32 = 446;
    /// OpenSecureChannelResponse.
    pub const OPEN_SECURE_CHANNEL_RESPONSE: u32 = 449;
    /// CloseSecureChannelRequest.
    pub const CLOSE_SECURE_CHANNEL_REQUEST: u32 = 452;
    /// CreateSessionRequest.
    pub const CREATE_SESSION_REQUEST: u32 = 461;
    /// CreateSessionResponse.
    pub const CREATE_SESSION_RESPONSE: u32 = 464;
    /// ActivateSessionRequest.
    pub const ACTIVATE_SESSION_REQUEST: u32 = 467;
    /// ActivateSessionResponse.
    pub const ACTIVATE_SESSION_RESPONSE: u32 = 470;
    /// CloseSessionRequest.
    pub const CLOSE_SESSION_REQUEST: u32 = 473;
    /// CloseSessionResponse.
    pub const CLOSE_SESSION_RESPONSE: u32 = 476;
    /// BrowseRequest.
    pub const BROWSE_REQUEST: u32 = 527;
    /// BrowseResponse.
    pub const BROWSE_RESPONSE: u32 = 530;
    /// BrowseNextRequest.
    pub const BROWSE_NEXT_REQUEST: u32 = 533;
    /// BrowseNextResponse.
    pub const BROWSE_NEXT_RESPONSE: u32 = 536;
    /// ReadRequest.
    pub const READ_REQUEST: u32 = 631;
    /// ReadResponse.
    pub const READ_RESPONSE: u32 = 634;
    /// WriteRequest.
    pub const WRITE_REQUEST: u32 = 673;
    /// WriteResponse.
    pub const WRITE_RESPONSE: u32 = 676;
    /// CallRequest.
    pub const CALL_REQUEST: u32 = 712;
    /// CallResponse.
    pub const CALL_RESPONSE: u32 = 715;
}

/// ServiceFault — the generic error response.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceFault {
    /// Common header carrying the failure status.
    pub response_header: ResponseHeader,
}

impl ServiceFault {
    /// Builds a fault echoing `request_handle` with `status`.
    pub fn new(request_handle: u32, now: ua_types::UaDateTime, status: StatusCode) -> Self {
        ServiceFault {
            response_header: ResponseHeader::with_status(request_handle, now, status),
        }
    }
}

impl UaEncode for ServiceFault {
    fn encode(&self, w: &mut Encoder) {
        self.response_header.encode(w);
    }
}

impl UaDecode for ServiceFault {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(ServiceFault {
            response_header: ResponseHeader::decode(r)?,
        })
    }
}

/// A decoded service message, request or response.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant names mirror the service names
pub enum ServiceBody {
    ServiceFault(ServiceFault),
    FindServersRequest(FindServersRequest),
    FindServersResponse(FindServersResponse),
    GetEndpointsRequest(GetEndpointsRequest),
    GetEndpointsResponse(GetEndpointsResponse),
    OpenSecureChannelRequest(OpenSecureChannelRequest),
    OpenSecureChannelResponse(OpenSecureChannelResponse),
    CloseSecureChannelRequest(CloseSecureChannelRequest),
    CreateSessionRequest(CreateSessionRequest),
    CreateSessionResponse(CreateSessionResponse),
    ActivateSessionRequest(ActivateSessionRequest),
    ActivateSessionResponse(ActivateSessionResponse),
    CloseSessionRequest(CloseSessionRequest),
    CloseSessionResponse(CloseSessionResponse),
    BrowseRequest(BrowseRequest),
    BrowseResponse(BrowseResponse),
    BrowseNextRequest(BrowseNextRequest),
    BrowseNextResponse(BrowseNextResponse),
    ReadRequest(ReadRequest),
    ReadResponse(ReadResponse),
    WriteRequest(WriteRequest),
    WriteResponse(WriteResponse),
    CallRequest(CallRequest),
    CallResponse(CallResponse),
}

macro_rules! dispatch {
    ($self:ident, $w:ident, $( $variant:ident => $id:expr ),+ $(,)?) => {
        match $self {
            $( ServiceBody::$variant(inner) => {
                NodeId::numeric(0, $id).encode($w);
                inner.encode($w);
            } )+
        }
    };
}

impl ServiceBody {
    /// The wire type id of this message.
    pub fn type_id(&self) -> u32 {
        match self {
            ServiceBody::ServiceFault(_) => ids::SERVICE_FAULT,
            ServiceBody::FindServersRequest(_) => ids::FIND_SERVERS_REQUEST,
            ServiceBody::FindServersResponse(_) => ids::FIND_SERVERS_RESPONSE,
            ServiceBody::GetEndpointsRequest(_) => ids::GET_ENDPOINTS_REQUEST,
            ServiceBody::GetEndpointsResponse(_) => ids::GET_ENDPOINTS_RESPONSE,
            ServiceBody::OpenSecureChannelRequest(_) => ids::OPEN_SECURE_CHANNEL_REQUEST,
            ServiceBody::OpenSecureChannelResponse(_) => ids::OPEN_SECURE_CHANNEL_RESPONSE,
            ServiceBody::CloseSecureChannelRequest(_) => ids::CLOSE_SECURE_CHANNEL_REQUEST,
            ServiceBody::CreateSessionRequest(_) => ids::CREATE_SESSION_REQUEST,
            ServiceBody::CreateSessionResponse(_) => ids::CREATE_SESSION_RESPONSE,
            ServiceBody::ActivateSessionRequest(_) => ids::ACTIVATE_SESSION_REQUEST,
            ServiceBody::ActivateSessionResponse(_) => ids::ACTIVATE_SESSION_RESPONSE,
            ServiceBody::CloseSessionRequest(_) => ids::CLOSE_SESSION_REQUEST,
            ServiceBody::CloseSessionResponse(_) => ids::CLOSE_SESSION_RESPONSE,
            ServiceBody::BrowseRequest(_) => ids::BROWSE_REQUEST,
            ServiceBody::BrowseResponse(_) => ids::BROWSE_RESPONSE,
            ServiceBody::BrowseNextRequest(_) => ids::BROWSE_NEXT_REQUEST,
            ServiceBody::BrowseNextResponse(_) => ids::BROWSE_NEXT_RESPONSE,
            ServiceBody::ReadRequest(_) => ids::READ_REQUEST,
            ServiceBody::ReadResponse(_) => ids::READ_RESPONSE,
            ServiceBody::WriteRequest(_) => ids::WRITE_REQUEST,
            ServiceBody::WriteResponse(_) => ids::WRITE_RESPONSE,
            ServiceBody::CallRequest(_) => ids::CALL_REQUEST,
            ServiceBody::CallResponse(_) => ids::CALL_RESPONSE,
        }
    }

    /// True if this is a response-type message (including faults).
    pub fn is_response(&self) -> bool {
        matches!(
            self,
            ServiceBody::ServiceFault(_)
                | ServiceBody::FindServersResponse(_)
                | ServiceBody::GetEndpointsResponse(_)
                | ServiceBody::OpenSecureChannelResponse(_)
                | ServiceBody::CreateSessionResponse(_)
                | ServiceBody::ActivateSessionResponse(_)
                | ServiceBody::CloseSessionResponse(_)
                | ServiceBody::BrowseResponse(_)
                | ServiceBody::BrowseNextResponse(_)
                | ServiceBody::ReadResponse(_)
                | ServiceBody::WriteResponse(_)
                | ServiceBody::CallResponse(_)
        )
    }
}

impl UaEncode for ServiceBody {
    fn encode(&self, w: &mut Encoder) {
        dispatch!(self, w,
            ServiceFault => ids::SERVICE_FAULT,
            FindServersRequest => ids::FIND_SERVERS_REQUEST,
            FindServersResponse => ids::FIND_SERVERS_RESPONSE,
            GetEndpointsRequest => ids::GET_ENDPOINTS_REQUEST,
            GetEndpointsResponse => ids::GET_ENDPOINTS_RESPONSE,
            OpenSecureChannelRequest => ids::OPEN_SECURE_CHANNEL_REQUEST,
            OpenSecureChannelResponse => ids::OPEN_SECURE_CHANNEL_RESPONSE,
            CloseSecureChannelRequest => ids::CLOSE_SECURE_CHANNEL_REQUEST,
            CreateSessionRequest => ids::CREATE_SESSION_REQUEST,
            CreateSessionResponse => ids::CREATE_SESSION_RESPONSE,
            ActivateSessionRequest => ids::ACTIVATE_SESSION_REQUEST,
            ActivateSessionResponse => ids::ACTIVATE_SESSION_RESPONSE,
            CloseSessionRequest => ids::CLOSE_SESSION_REQUEST,
            CloseSessionResponse => ids::CLOSE_SESSION_RESPONSE,
            BrowseRequest => ids::BROWSE_REQUEST,
            BrowseResponse => ids::BROWSE_RESPONSE,
            BrowseNextRequest => ids::BROWSE_NEXT_REQUEST,
            BrowseNextResponse => ids::BROWSE_NEXT_RESPONSE,
            ReadRequest => ids::READ_REQUEST,
            ReadResponse => ids::READ_RESPONSE,
            WriteRequest => ids::WRITE_REQUEST,
            WriteResponse => ids::WRITE_RESPONSE,
            CallRequest => ids::CALL_REQUEST,
            CallResponse => ids::CALL_RESPONSE,
        );
    }
}

impl UaDecode for ServiceBody {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let type_node = NodeId::decode(r)?;
        if type_node.namespace != 0 {
            return Err(CodecError::Invalid("service type id not in namespace 0"));
        }
        let id = type_node
            .as_numeric()
            .ok_or(CodecError::Invalid("non-numeric service type id"))?;
        Ok(match id {
            ids::SERVICE_FAULT => ServiceBody::ServiceFault(ServiceFault::decode(r)?),
            ids::FIND_SERVERS_REQUEST => {
                ServiceBody::FindServersRequest(FindServersRequest::decode(r)?)
            }
            ids::FIND_SERVERS_RESPONSE => {
                ServiceBody::FindServersResponse(FindServersResponse::decode(r)?)
            }
            ids::GET_ENDPOINTS_REQUEST => {
                ServiceBody::GetEndpointsRequest(GetEndpointsRequest::decode(r)?)
            }
            ids::GET_ENDPOINTS_RESPONSE => {
                ServiceBody::GetEndpointsResponse(GetEndpointsResponse::decode(r)?)
            }
            ids::OPEN_SECURE_CHANNEL_REQUEST => {
                ServiceBody::OpenSecureChannelRequest(OpenSecureChannelRequest::decode(r)?)
            }
            ids::OPEN_SECURE_CHANNEL_RESPONSE => {
                ServiceBody::OpenSecureChannelResponse(OpenSecureChannelResponse::decode(r)?)
            }
            ids::CLOSE_SECURE_CHANNEL_REQUEST => {
                ServiceBody::CloseSecureChannelRequest(CloseSecureChannelRequest::decode(r)?)
            }
            ids::CREATE_SESSION_REQUEST => {
                ServiceBody::CreateSessionRequest(CreateSessionRequest::decode(r)?)
            }
            ids::CREATE_SESSION_RESPONSE => {
                ServiceBody::CreateSessionResponse(CreateSessionResponse::decode(r)?)
            }
            ids::ACTIVATE_SESSION_REQUEST => {
                ServiceBody::ActivateSessionRequest(ActivateSessionRequest::decode(r)?)
            }
            ids::ACTIVATE_SESSION_RESPONSE => {
                ServiceBody::ActivateSessionResponse(ActivateSessionResponse::decode(r)?)
            }
            ids::CLOSE_SESSION_REQUEST => {
                ServiceBody::CloseSessionRequest(CloseSessionRequest::decode(r)?)
            }
            ids::CLOSE_SESSION_RESPONSE => {
                ServiceBody::CloseSessionResponse(CloseSessionResponse::decode(r)?)
            }
            ids::BROWSE_REQUEST => ServiceBody::BrowseRequest(BrowseRequest::decode(r)?),
            ids::BROWSE_RESPONSE => ServiceBody::BrowseResponse(BrowseResponse::decode(r)?),
            ids::BROWSE_NEXT_REQUEST => {
                ServiceBody::BrowseNextRequest(BrowseNextRequest::decode(r)?)
            }
            ids::BROWSE_NEXT_RESPONSE => {
                ServiceBody::BrowseNextResponse(BrowseNextResponse::decode(r)?)
            }
            ids::READ_REQUEST => ServiceBody::ReadRequest(ReadRequest::decode(r)?),
            ids::READ_RESPONSE => ServiceBody::ReadResponse(ReadResponse::decode(r)?),
            ids::WRITE_REQUEST => ServiceBody::WriteRequest(WriteRequest::decode(r)?),
            ids::WRITE_RESPONSE => ServiceBody::WriteResponse(WriteResponse::decode(r)?),
            ids::CALL_REQUEST => ServiceBody::CallRequest(CallRequest::decode(r)?),
            ids::CALL_RESPONSE => ServiceBody::CallResponse(CallResponse::decode(r)?),
            other => {
                return Err(CodecError::InvalidDiscriminant {
                    what: "service type id",
                    value: other,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_types::UaDateTime;

    #[test]
    fn dispatch_roundtrip() {
        let now = UaDateTime::from_unix_seconds(1_600_000_000);
        let body = ServiceBody::GetEndpointsRequest(GetEndpointsRequest {
            request_header: RequestHeader::new(NodeId::NULL, 1, now),
            endpoint_url: Some("opc.tcp://h:4840/".into()),
            locale_ids: vec![],
            profile_uris: vec![],
        });
        let bytes = body.encode_to_vec();
        let parsed = ServiceBody::decode_all(&bytes).unwrap();
        assert_eq!(parsed, body);
        assert_eq!(parsed.type_id(), ids::GET_ENDPOINTS_REQUEST);
        assert!(!parsed.is_response());
    }

    #[test]
    fn fault_roundtrip() {
        let now = UaDateTime::from_unix_seconds(0);
        let body = ServiceBody::ServiceFault(ServiceFault::new(
            9,
            now,
            StatusCode::BAD_SERVICE_UNSUPPORTED,
        ));
        let bytes = body.encode_to_vec();
        let parsed = ServiceBody::decode_all(&bytes).unwrap();
        assert!(parsed.is_response());
        match parsed {
            ServiceBody::ServiceFault(f) => {
                assert_eq!(
                    f.response_header.service_result,
                    StatusCode::BAD_SERVICE_UNSUPPORTED
                )
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn unknown_service_id_rejected() {
        let mut w = Encoder::new();
        NodeId::numeric(0, 50_000).encode(&mut w);
        assert!(matches!(
            ServiceBody::decode_all(&w.finish()),
            Err(CodecError::InvalidDiscriminant { .. })
        ));
    }

    #[test]
    fn wrong_namespace_rejected() {
        let mut w = Encoder::new();
        NodeId::numeric(2, ids::GET_ENDPOINTS_REQUEST).encode(&mut w);
        assert!(ServiceBody::decode_all(&w.finish()).is_err());
    }
}
