//! Request/response headers and small shared service types.

use ua_types::{
    CodecError, Decoder, Encoder, ExtensionObject, NodeId, StatusCode, UaDateTime, UaDecode,
    UaEncode,
};

/// Common request header (Part 4 §7.28).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestHeader {
    /// Session authentication token (null before session creation).
    pub authentication_token: NodeId,
    /// Client timestamp.
    pub timestamp: UaDateTime,
    /// Client-assigned handle echoed in the response.
    pub request_handle: u32,
    /// Diagnostic verbosity mask (0 = none).
    pub return_diagnostics: u32,
    /// Audit log correlation id.
    pub audit_entry_id: Option<String>,
    /// Timeout hint in milliseconds.
    pub timeout_hint: u32,
    /// Extension point (always null here).
    pub additional_header: ExtensionObject,
}

impl RequestHeader {
    /// A header with the given handle and token.
    pub fn new(authentication_token: NodeId, request_handle: u32, now: UaDateTime) -> Self {
        RequestHeader {
            authentication_token,
            timestamp: now,
            request_handle,
            return_diagnostics: 0,
            audit_entry_id: None,
            timeout_hint: 15_000,
            additional_header: ExtensionObject::null(),
        }
    }
}

impl UaEncode for RequestHeader {
    fn encode(&self, w: &mut Encoder) {
        self.authentication_token.encode(w);
        self.timestamp.encode(w);
        w.u32(self.request_handle);
        w.u32(self.return_diagnostics);
        w.string(self.audit_entry_id.as_deref());
        w.u32(self.timeout_hint);
        self.additional_header.encode(w);
    }
}

impl UaDecode for RequestHeader {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(RequestHeader {
            authentication_token: NodeId::decode(r)?,
            timestamp: UaDateTime::decode(r)?,
            request_handle: r.u32()?,
            return_diagnostics: r.u32()?,
            audit_entry_id: r.string()?,
            timeout_hint: r.u32()?,
            additional_header: ExtensionObject::decode(r)?,
        })
    }
}

/// Common response header (Part 4 §7.29).
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseHeader {
    /// Server timestamp.
    pub timestamp: UaDateTime,
    /// Echo of the request handle.
    pub request_handle: u32,
    /// Overall service result.
    pub service_result: StatusCode,
    /// Service-level diagnostics (modeled empty).
    pub service_diagnostics: DiagnosticInfo,
    /// String table for diagnostics.
    pub string_table: Vec<String>,
    /// Extension point (null).
    pub additional_header: ExtensionObject,
}

impl ResponseHeader {
    /// A success header echoing `request_handle`.
    pub fn good(request_handle: u32, now: UaDateTime) -> Self {
        Self::with_status(request_handle, now, StatusCode::GOOD)
    }

    /// A header with an explicit service result.
    pub fn with_status(request_handle: u32, now: UaDateTime, status: StatusCode) -> Self {
        ResponseHeader {
            timestamp: now,
            request_handle,
            service_result: status,
            service_diagnostics: DiagnosticInfo,
            string_table: Vec::new(),
            additional_header: ExtensionObject::null(),
        }
    }
}

impl UaEncode for ResponseHeader {
    fn encode(&self, w: &mut Encoder) {
        self.timestamp.encode(w);
        w.u32(self.request_handle);
        self.service_result.encode(w);
        self.service_diagnostics.encode(w);
        w.array(&self.string_table, |w, s| w.string(Some(s)));
        self.additional_header.encode(w);
    }
}

impl UaDecode for ResponseHeader {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(ResponseHeader {
            timestamp: UaDateTime::decode(r)?,
            request_handle: r.u32()?,
            service_result: StatusCode::decode(r)?,
            service_diagnostics: DiagnosticInfo::decode(r)?,
            string_table: r.array(|r| r.string().map(|s| s.unwrap_or_default()))?,
            additional_header: ExtensionObject::decode(r)?,
        })
    }
}

/// DiagnosticInfo, modeled as always-empty (mask byte `0x00`). The study
/// never requests diagnostics (`return_diagnostics = 0`), so servers send
/// empty infos; non-empty masks are rejected as unsupported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiagnosticInfo;

impl UaEncode for DiagnosticInfo {
    fn encode(&self, w: &mut Encoder) {
        w.u8(0);
    }
}

impl UaDecode for DiagnosticInfo {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let mask = r.u8()?;
        if mask != 0 {
            return Err(CodecError::Invalid("non-empty DiagnosticInfo unsupported"));
        }
        Ok(DiagnosticInfo)
    }
}

/// Encodes a null array of diagnostic infos (length -1), the conventional
/// wire form when no diagnostics were requested.
pub fn encode_null_diagnostics(w: &mut Encoder) {
    w.i32(-1);
}

/// Accepts a null (-1), empty, or all-empty array of diagnostic infos.
pub fn decode_null_diagnostics(r: &mut Decoder<'_>) -> Result<(), CodecError> {
    let declared = r.i32()?;
    match declared {
        -1 | 0 => Ok(()),
        n if n > 0 => {
            for _ in 0..n {
                DiagnosticInfo::decode(r)?;
            }
            Ok(())
        }
        n => Err(CodecError::BadLength(n as i64)),
    }
}

/// A signature over a certificate+nonce, used in session handshakes
/// (Part 4 §7.32).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SignatureData {
    /// Algorithm URI (`None` when no signature is present).
    pub algorithm: Option<String>,
    /// The signature bytes.
    pub signature: Option<Vec<u8>>,
}

impl SignatureData {
    /// True if no signature is carried.
    pub fn is_empty(&self) -> bool {
        self.signature.is_none()
    }
}

impl UaEncode for SignatureData {
    fn encode(&self, w: &mut Encoder) {
        w.string(self.algorithm.as_deref());
        w.byte_string(self.signature.as_deref());
    }
}

impl UaDecode for SignatureData {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(SignatureData {
            algorithm: r.string()?,
            signature: r.byte_string()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_header_roundtrip() {
        let h = RequestHeader::new(
            NodeId::numeric(0, 0),
            7,
            UaDateTime::from_unix_seconds(1_600_000_000),
        );
        let bytes = h.encode_to_vec();
        assert_eq!(RequestHeader::decode_all(&bytes).unwrap(), h);
    }

    #[test]
    fn response_header_roundtrip() {
        let h = ResponseHeader::with_status(
            9,
            UaDateTime::from_unix_seconds(1_600_000_000),
            StatusCode::BAD_SERVICE_UNSUPPORTED,
        );
        let bytes = h.encode_to_vec();
        let parsed = ResponseHeader::decode_all(&bytes).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(parsed.service_result, StatusCode::BAD_SERVICE_UNSUPPORTED);
    }

    #[test]
    fn diagnostic_info_only_empty() {
        assert!(DiagnosticInfo::decode_all(&[0]).is_ok());
        assert!(DiagnosticInfo::decode_all(&[1]).is_err());
    }

    #[test]
    fn null_diagnostics_helpers() {
        let mut w = Encoder::new();
        encode_null_diagnostics(&mut w);
        let bytes = w.finish();
        let mut r = Decoder::new(&bytes);
        decode_null_diagnostics(&mut r).unwrap();
        // Also accept explicit empty arrays of empty infos.
        let mut w = Encoder::new();
        w.i32(2);
        w.u8(0);
        w.u8(0);
        let bytes = w.finish();
        let mut r = Decoder::new(&bytes);
        decode_null_diagnostics(&mut r).unwrap();
    }

    #[test]
    fn signature_data_roundtrip() {
        let s = SignatureData {
            algorithm: Some("http://www.w3.org/2001/04/xmldsig-more#rsa-sha256".into()),
            signature: Some(vec![1, 2, 3]),
        };
        assert!(!s.is_empty());
        let bytes = s.encode_to_vec();
        assert_eq!(SignatureData::decode_all(&bytes).unwrap(), s);
        assert!(SignatureData::default().is_empty());
    }
}
