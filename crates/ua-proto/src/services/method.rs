//! Method service: Call (Part 4 §5.11). §5.4 of the paper found 61 % of
//! accessible systems expose most of their functions (e.g. `AddEndpoint`)
//! to anonymous users; the scanner itself never calls any (Appendix A.1).

use super::header::{
    decode_null_diagnostics, encode_null_diagnostics, RequestHeader, ResponseHeader,
};
use ua_types::{CodecError, Decoder, Encoder, NodeId, StatusCode, UaDecode, UaEncode, Variant};

/// One method invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CallMethodRequest {
    /// Object the method belongs to.
    pub object_id: NodeId,
    /// The method node.
    pub method_id: NodeId,
    /// Input arguments.
    pub input_arguments: Vec<Variant>,
}

impl UaEncode for CallMethodRequest {
    fn encode(&self, w: &mut Encoder) {
        self.object_id.encode(w);
        self.method_id.encode(w);
        w.array(&self.input_arguments, |w, a| a.encode(w));
    }
}

impl UaDecode for CallMethodRequest {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(CallMethodRequest {
            object_id: NodeId::decode(r)?,
            method_id: NodeId::decode(r)?,
            input_arguments: r.array(Variant::decode)?,
        })
    }
}

/// Result of one method invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CallMethodResult {
    /// Overall status.
    pub status_code: StatusCode,
    /// Per-argument validation results.
    pub input_argument_results: Vec<StatusCode>,
    /// Output arguments.
    pub output_arguments: Vec<Variant>,
}

impl CallMethodResult {
    /// A failure with no outputs.
    pub fn error(status_code: StatusCode) -> Self {
        CallMethodResult {
            status_code,
            input_argument_results: Vec::new(),
            output_arguments: Vec::new(),
        }
    }
}

impl UaEncode for CallMethodResult {
    fn encode(&self, w: &mut Encoder) {
        self.status_code.encode(w);
        w.array(&self.input_argument_results, |w, s| s.encode(w));
        encode_null_diagnostics(w);
        w.array(&self.output_arguments, |w, a| a.encode(w));
    }
}

impl UaDecode for CallMethodResult {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let status_code = StatusCode::decode(r)?;
        let input_argument_results = r.array(StatusCode::decode)?;
        decode_null_diagnostics(r)?;
        Ok(CallMethodResult {
            status_code,
            input_argument_results,
            output_arguments: r.array(Variant::decode)?,
        })
    }
}

/// CallRequest.
#[derive(Debug, Clone, PartialEq)]
pub struct CallRequest {
    /// Common header.
    pub request_header: RequestHeader,
    /// The invocations.
    pub methods_to_call: Vec<CallMethodRequest>,
}

impl UaEncode for CallRequest {
    fn encode(&self, w: &mut Encoder) {
        self.request_header.encode(w);
        w.array(&self.methods_to_call, |w, m| m.encode(w));
    }
}

impl UaDecode for CallRequest {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(CallRequest {
            request_header: RequestHeader::decode(r)?,
            methods_to_call: r.array(CallMethodRequest::decode)?,
        })
    }
}

/// CallResponse.
#[derive(Debug, Clone, PartialEq)]
pub struct CallResponse {
    /// Common header.
    pub response_header: ResponseHeader,
    /// Per-invocation results.
    pub results: Vec<CallMethodResult>,
}

impl UaEncode for CallResponse {
    fn encode(&self, w: &mut Encoder) {
        self.response_header.encode(w);
        w.array(&self.results, |w, r| r.encode(w));
        encode_null_diagnostics(w);
    }
}

impl UaDecode for CallResponse {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let response_header = ResponseHeader::decode(r)?;
        let results = r.array(CallMethodResult::decode)?;
        decode_null_diagnostics(r)?;
        Ok(CallResponse {
            response_header,
            results,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_types::UaDateTime;

    #[test]
    fn call_roundtrip() {
        let req = CallRequest {
            request_header: RequestHeader::new(
                NodeId::numeric(0, 7),
                6,
                UaDateTime::from_unix_seconds(0),
            ),
            methods_to_call: vec![CallMethodRequest {
                object_id: NodeId::numeric(0, 2253), // Server object
                method_id: NodeId::string(2, "AddEndpoint"),
                input_arguments: vec![Variant::String(Some("opc.tcp://evil:4840".into()))],
            }],
        };
        let bytes = req.encode_to_vec();
        assert_eq!(CallRequest::decode_all(&bytes).unwrap(), req);

        let resp = CallResponse {
            response_header: ResponseHeader::good(6, UaDateTime::from_unix_seconds(0)),
            results: vec![
                CallMethodResult {
                    status_code: StatusCode::GOOD,
                    input_argument_results: vec![StatusCode::GOOD],
                    output_arguments: vec![Variant::Boolean(true)],
                },
                CallMethodResult::error(StatusCode::BAD_NOT_EXECUTABLE),
            ],
        };
        let bytes = resp.encode_to_vec();
        assert_eq!(CallResponse::decode_all(&bytes).unwrap(), resp);
    }
}
