//! Discovery services: GetEndpoints and FindServers — the unauthenticated
//! requests the paper's scanner sends to every host (§4).

use super::header::{RequestHeader, ResponseHeader};
use ua_types::{
    ApplicationDescription, CodecError, Decoder, Encoder, EndpointDescription, UaDecode, UaEncode,
};

/// GetEndpointsRequest (Part 4 §5.4.4).
#[derive(Debug, Clone, PartialEq)]
pub struct GetEndpointsRequest {
    /// Common header.
    pub request_header: RequestHeader,
    /// The URL the client used to reach the server.
    pub endpoint_url: Option<String>,
    /// Preferred locales (unused by the scanner).
    pub locale_ids: Vec<String>,
    /// Transport profile filter (empty = all).
    pub profile_uris: Vec<String>,
}

impl UaEncode for GetEndpointsRequest {
    fn encode(&self, w: &mut Encoder) {
        self.request_header.encode(w);
        w.string(self.endpoint_url.as_deref());
        w.array(&self.locale_ids, |w, s| w.string(Some(s)));
        w.array(&self.profile_uris, |w, s| w.string(Some(s)));
    }
}

impl UaDecode for GetEndpointsRequest {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(GetEndpointsRequest {
            request_header: RequestHeader::decode(r)?,
            endpoint_url: r.string()?,
            locale_ids: r.array(|r| r.string().map(Option::unwrap_or_default))?,
            profile_uris: r.array(|r| r.string().map(Option::unwrap_or_default))?,
        })
    }
}

/// GetEndpointsResponse: the full security configuration surface of a
/// server (Figure 1 in the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct GetEndpointsResponse {
    /// Common header.
    pub response_header: ResponseHeader,
    /// All endpoints the server offers.
    pub endpoints: Vec<EndpointDescription>,
}

impl UaEncode for GetEndpointsResponse {
    fn encode(&self, w: &mut Encoder) {
        self.response_header.encode(w);
        w.array(&self.endpoints, |w, e| e.encode(w));
    }
}

impl UaDecode for GetEndpointsResponse {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(GetEndpointsResponse {
            response_header: ResponseHeader::decode(r)?,
            endpoints: r.array(EndpointDescription::decode)?,
        })
    }
}

/// FindServersRequest (Part 4 §5.4.2) — what discovery servers answer;
/// the paper followed the returned host/port combinations from
/// 2020-05-04 onward.
#[derive(Debug, Clone, PartialEq)]
pub struct FindServersRequest {
    /// Common header.
    pub request_header: RequestHeader,
    /// The URL the client used to reach the server.
    pub endpoint_url: Option<String>,
    /// Preferred locales.
    pub locale_ids: Vec<String>,
    /// Filter by application URIs (empty = all).
    pub server_uris: Vec<String>,
}

impl UaEncode for FindServersRequest {
    fn encode(&self, w: &mut Encoder) {
        self.request_header.encode(w);
        w.string(self.endpoint_url.as_deref());
        w.array(&self.locale_ids, |w, s| w.string(Some(s)));
        w.array(&self.server_uris, |w, s| w.string(Some(s)));
    }
}

impl UaDecode for FindServersRequest {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(FindServersRequest {
            request_header: RequestHeader::decode(r)?,
            endpoint_url: r.string()?,
            locale_ids: r.array(|r| r.string().map(Option::unwrap_or_default))?,
            server_uris: r.array(|r| r.string().map(Option::unwrap_or_default))?,
        })
    }
}

/// FindServersResponse.
#[derive(Debug, Clone, PartialEq)]
pub struct FindServersResponse {
    /// Common header.
    pub response_header: ResponseHeader,
    /// Known applications, each with discovery URLs that may point to
    /// other hosts and non-default ports.
    pub servers: Vec<ApplicationDescription>,
}

impl UaEncode for FindServersResponse {
    fn encode(&self, w: &mut Encoder) {
        self.response_header.encode(w);
        w.array(&self.servers, |w, s| s.encode(w));
    }
}

impl UaDecode for FindServersResponse {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(FindServersResponse {
            response_header: ResponseHeader::decode(r)?,
            servers: r.array(ApplicationDescription::decode)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_types::{NodeId, UaDateTime};

    fn header() -> RequestHeader {
        RequestHeader::new(
            NodeId::NULL,
            1,
            UaDateTime::from_unix_seconds(1_600_000_000),
        )
    }

    #[test]
    fn get_endpoints_roundtrip() {
        let req = GetEndpointsRequest {
            request_header: header(),
            endpoint_url: Some("opc.tcp://198.51.100.7:4840/".into()),
            locale_ids: vec![],
            profile_uris: vec![],
        };
        let bytes = req.encode_to_vec();
        assert_eq!(GetEndpointsRequest::decode_all(&bytes).unwrap(), req);
    }

    #[test]
    fn find_servers_roundtrip() {
        let req = FindServersRequest {
            request_header: header(),
            endpoint_url: None,
            locale_ids: vec!["en".into()],
            server_uris: vec!["urn:x".into(), "urn:y".into()],
        };
        let bytes = req.encode_to_vec();
        assert_eq!(FindServersRequest::decode_all(&bytes).unwrap(), req);

        let resp = FindServersResponse {
            response_header: ResponseHeader::good(1, UaDateTime::from_unix_seconds(0)),
            servers: vec![ApplicationDescription::server("urn:a", "A")],
        };
        let bytes = resp.encode_to_vec();
        assert_eq!(FindServersResponse::decode_all(&bytes).unwrap(), resp);
    }
}
