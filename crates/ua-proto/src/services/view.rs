//! View services: Browse and BrowseNext (Part 4 §5.8) — the machinery of
//! the paper's address-space traversal (§5.4, Figure 7).

use super::header::{
    decode_null_diagnostics, encode_null_diagnostics, RequestHeader, ResponseHeader,
};
use ua_types::{
    BrowseDirection, CodecError, Decoder, Encoder, ExpandedNodeId, LocalizedText, NodeClass,
    NodeId, QualifiedName, StatusCode, UaDateTime, UaDecode, UaEncode,
};

/// A view selector; the null view means the whole address space.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ViewDescription {
    /// View node id (null = no view).
    pub view_id: NodeId,
    /// Timestamp (unused).
    pub timestamp: UaDateTime,
    /// Version (unused).
    pub view_version: u32,
}

impl UaEncode for ViewDescription {
    fn encode(&self, w: &mut Encoder) {
        self.view_id.encode(w);
        self.timestamp.encode(w);
        w.u32(self.view_version);
    }
}

impl UaDecode for ViewDescription {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(ViewDescription {
            view_id: NodeId::decode(r)?,
            timestamp: UaDateTime::decode(r)?,
            view_version: r.u32()?,
        })
    }
}

/// What to browse from one node.
#[derive(Debug, Clone, PartialEq)]
pub struct BrowseDescription {
    /// Starting node.
    pub node_id: NodeId,
    /// Direction to follow references.
    pub browse_direction: BrowseDirection,
    /// Reference type filter (null = all).
    pub reference_type_id: NodeId,
    /// Include subtypes of the reference type.
    pub include_subtypes: bool,
    /// Node class mask (0 = all).
    pub node_class_mask: u32,
    /// Result field mask (63 = all).
    pub result_mask: u32,
}

impl BrowseDescription {
    /// Browse all forward references of `node_id` — what the scanner's
    /// traversal issues for every node.
    pub fn all_forward(node_id: NodeId) -> Self {
        BrowseDescription {
            node_id,
            browse_direction: BrowseDirection::Forward,
            reference_type_id: NodeId::NULL,
            include_subtypes: true,
            node_class_mask: 0,
            result_mask: 63,
        }
    }
}

impl UaEncode for BrowseDescription {
    fn encode(&self, w: &mut Encoder) {
        self.node_id.encode(w);
        self.browse_direction.encode(w);
        self.reference_type_id.encode(w);
        w.boolean(self.include_subtypes);
        w.u32(self.node_class_mask);
        w.u32(self.result_mask);
    }
}

impl UaDecode for BrowseDescription {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(BrowseDescription {
            node_id: NodeId::decode(r)?,
            browse_direction: BrowseDirection::decode(r)?,
            reference_type_id: NodeId::decode(r)?,
            include_subtypes: r.boolean()?,
            node_class_mask: r.u32()?,
            result_mask: r.u32()?,
        })
    }
}

/// One reference found during browsing.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceDescription {
    /// Reference type (e.g. HasComponent).
    pub reference_type_id: NodeId,
    /// Forward or inverse.
    pub is_forward: bool,
    /// Target node.
    pub node_id: ExpandedNodeId,
    /// Target browse name.
    pub browse_name: QualifiedName,
    /// Target display name.
    pub display_name: LocalizedText,
    /// Target node class.
    pub node_class: NodeClass,
    /// Target type definition.
    pub type_definition: ExpandedNodeId,
}

impl UaEncode for ReferenceDescription {
    fn encode(&self, w: &mut Encoder) {
        self.reference_type_id.encode(w);
        w.boolean(self.is_forward);
        self.node_id.encode(w);
        self.browse_name.encode(w);
        self.display_name.encode(w);
        self.node_class.encode(w);
        self.type_definition.encode(w);
    }
}

impl UaDecode for ReferenceDescription {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(ReferenceDescription {
            reference_type_id: NodeId::decode(r)?,
            is_forward: r.boolean()?,
            node_id: ExpandedNodeId::decode(r)?,
            browse_name: QualifiedName::decode(r)?,
            display_name: LocalizedText::decode(r)?,
            node_class: NodeClass::decode(r)?,
            type_definition: ExpandedNodeId::decode(r)?,
        })
    }
}

/// Result for one browsed node.
#[derive(Debug, Clone, PartialEq)]
pub struct BrowseResult {
    /// Status for this node.
    pub status_code: StatusCode,
    /// Continuation point when more references exist than
    /// `requested_max_references_per_node`.
    pub continuation_point: Option<Vec<u8>>,
    /// The references found.
    pub references: Vec<ReferenceDescription>,
}

impl UaEncode for BrowseResult {
    fn encode(&self, w: &mut Encoder) {
        self.status_code.encode(w);
        w.byte_string(self.continuation_point.as_deref());
        w.array(&self.references, |w, r| r.encode(w));
    }
}

impl UaDecode for BrowseResult {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(BrowseResult {
            status_code: StatusCode::decode(r)?,
            continuation_point: r.byte_string()?,
            references: r.array(ReferenceDescription::decode)?,
        })
    }
}

/// BrowseRequest.
#[derive(Debug, Clone, PartialEq)]
pub struct BrowseRequest {
    /// Common header.
    pub request_header: RequestHeader,
    /// View (null = whole address space).
    pub view: ViewDescription,
    /// Per-node reference cap (0 = server chooses).
    pub requested_max_references_per_node: u32,
    /// The nodes to browse.
    pub nodes_to_browse: Vec<BrowseDescription>,
}

impl UaEncode for BrowseRequest {
    fn encode(&self, w: &mut Encoder) {
        self.request_header.encode(w);
        self.view.encode(w);
        w.u32(self.requested_max_references_per_node);
        w.array(&self.nodes_to_browse, |w, n| n.encode(w));
    }
}

impl UaDecode for BrowseRequest {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(BrowseRequest {
            request_header: RequestHeader::decode(r)?,
            view: ViewDescription::decode(r)?,
            requested_max_references_per_node: r.u32()?,
            nodes_to_browse: r.array(BrowseDescription::decode)?,
        })
    }
}

/// BrowseResponse.
#[derive(Debug, Clone, PartialEq)]
pub struct BrowseResponse {
    /// Common header.
    pub response_header: ResponseHeader,
    /// Per-node results.
    pub results: Vec<BrowseResult>,
}

impl UaEncode for BrowseResponse {
    fn encode(&self, w: &mut Encoder) {
        self.response_header.encode(w);
        w.array(&self.results, |w, r| r.encode(w));
        encode_null_diagnostics(w);
    }
}

impl UaDecode for BrowseResponse {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let response_header = ResponseHeader::decode(r)?;
        let results = r.array(BrowseResult::decode)?;
        decode_null_diagnostics(r)?;
        Ok(BrowseResponse {
            response_header,
            results,
        })
    }
}

/// BrowseNextRequest — continues browsing with continuation points.
#[derive(Debug, Clone, PartialEq)]
pub struct BrowseNextRequest {
    /// Common header.
    pub request_header: RequestHeader,
    /// Release instead of continue.
    pub release_continuation_points: bool,
    /// Continuation points from prior results.
    pub continuation_points: Vec<Vec<u8>>,
}

impl UaEncode for BrowseNextRequest {
    fn encode(&self, w: &mut Encoder) {
        self.request_header.encode(w);
        w.boolean(self.release_continuation_points);
        w.array(&self.continuation_points, |w, c| w.byte_string(Some(c)));
    }
}

impl UaDecode for BrowseNextRequest {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(BrowseNextRequest {
            request_header: RequestHeader::decode(r)?,
            release_continuation_points: r.boolean()?,
            continuation_points: r.array(|r| {
                r.byte_string()?
                    .ok_or(CodecError::Invalid("null continuation point"))
            })?,
        })
    }
}

/// BrowseNextResponse.
#[derive(Debug, Clone, PartialEq)]
pub struct BrowseNextResponse {
    /// Common header.
    pub response_header: ResponseHeader,
    /// Per-continuation-point results.
    pub results: Vec<BrowseResult>,
}

impl UaEncode for BrowseNextResponse {
    fn encode(&self, w: &mut Encoder) {
        self.response_header.encode(w);
        w.array(&self.results, |w, r| r.encode(w));
        encode_null_diagnostics(w);
    }
}

impl UaDecode for BrowseNextResponse {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let response_header = ResponseHeader::decode(r)?;
        let results = r.array(BrowseResult::decode)?;
        decode_null_diagnostics(r)?;
        Ok(BrowseNextResponse {
            response_header,
            results,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(name: &str) -> ReferenceDescription {
        ReferenceDescription {
            reference_type_id: NodeId::numeric(0, 47), // HasComponent
            is_forward: true,
            node_id: ExpandedNodeId::local(NodeId::string(2, name)),
            browse_name: QualifiedName::new(2, name),
            display_name: LocalizedText::new(name),
            node_class: NodeClass::Variable,
            type_definition: ExpandedNodeId::local(NodeId::numeric(0, 63)),
        }
    }

    #[test]
    fn browse_roundtrip() {
        let req = BrowseRequest {
            request_header: RequestHeader::new(
                NodeId::numeric(0, 5),
                3,
                UaDateTime::from_unix_seconds(0),
            ),
            view: ViewDescription::default(),
            requested_max_references_per_node: 100,
            nodes_to_browse: vec![BrowseDescription::all_forward(NodeId::numeric(0, 84))],
        };
        let bytes = req.encode_to_vec();
        assert_eq!(BrowseRequest::decode_all(&bytes).unwrap(), req);

        let resp = BrowseResponse {
            response_header: ResponseHeader::good(3, UaDateTime::from_unix_seconds(0)),
            results: vec![BrowseResult {
                status_code: StatusCode::GOOD,
                continuation_point: Some(vec![0xC0]),
                references: vec![reference("m3InflowPerHour"), reference("rSetFillLevel")],
            }],
        };
        let bytes = resp.encode_to_vec();
        assert_eq!(BrowseResponse::decode_all(&bytes).unwrap(), resp);
    }

    #[test]
    fn browse_next_roundtrip() {
        let req = BrowseNextRequest {
            request_header: RequestHeader::new(
                NodeId::numeric(0, 5),
                4,
                UaDateTime::from_unix_seconds(0),
            ),
            release_continuation_points: false,
            continuation_points: vec![vec![0xC0], vec![0xC1]],
        };
        let bytes = req.encode_to_vec();
        assert_eq!(BrowseNextRequest::decode_all(&bytes).unwrap(), req);

        let resp = BrowseNextResponse {
            response_header: ResponseHeader::good(4, UaDateTime::from_unix_seconds(0)),
            results: vec![BrowseResult {
                status_code: StatusCode::BAD_CONTINUATION_POINT_INVALID,
                continuation_point: None,
                references: vec![],
            }],
        };
        let bytes = resp.encode_to_vec();
        assert_eq!(BrowseNextResponse::decode_all(&bytes).unwrap(), resp);
    }

    #[test]
    fn all_forward_defaults() {
        let d = BrowseDescription::all_forward(NodeId::numeric(0, 84));
        assert_eq!(d.browse_direction, BrowseDirection::Forward);
        assert_eq!(d.node_class_mask, 0);
        assert_eq!(d.result_mask, 63);
    }
}
