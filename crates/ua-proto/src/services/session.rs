//! Session services: CreateSession, ActivateSession, CloseSession, and
//! the user identity tokens (Part 4 §5.6) — where the paper's
//! authentication analysis (§5.4, Table 2) plays out.

use super::header::{
    decode_null_diagnostics, encode_null_diagnostics, RequestHeader, ResponseHeader, SignatureData,
};
use ua_types::{
    encoding_ids, ApplicationDescription, CodecError, Decoder, Encoder, EndpointDescription,
    ExtensionObject, NodeId, StatusCode, UaDecode, UaEncode,
};

/// CreateSessionRequest.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateSessionRequest {
    /// Common header.
    pub request_header: RequestHeader,
    /// The client application (the scanner publishes its contact data in
    /// the `application_name`, per Appendix A.2 of the paper).
    pub client_description: ApplicationDescription,
    /// Server URI the client expects.
    pub server_uri: Option<String>,
    /// Endpoint URL used.
    pub endpoint_url: Option<String>,
    /// Human-readable session name.
    pub session_name: Option<String>,
    /// Client nonce (proof-of-possession for the session).
    pub client_nonce: Option<Vec<u8>>,
    /// Client certificate (serialized).
    pub client_certificate: Option<Vec<u8>>,
    /// Requested timeout in milliseconds.
    pub requested_session_timeout: f64,
    /// Maximum response size the client accepts.
    pub max_response_message_size: u32,
}

impl UaEncode for CreateSessionRequest {
    fn encode(&self, w: &mut Encoder) {
        self.request_header.encode(w);
        self.client_description.encode(w);
        w.string(self.server_uri.as_deref());
        w.string(self.endpoint_url.as_deref());
        w.string(self.session_name.as_deref());
        w.byte_string(self.client_nonce.as_deref());
        w.byte_string(self.client_certificate.as_deref());
        w.f64(self.requested_session_timeout);
        w.u32(self.max_response_message_size);
    }
}

impl UaDecode for CreateSessionRequest {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(CreateSessionRequest {
            request_header: RequestHeader::decode(r)?,
            client_description: ApplicationDescription::decode(r)?,
            server_uri: r.string()?,
            endpoint_url: r.string()?,
            session_name: r.string()?,
            client_nonce: r.byte_string()?,
            client_certificate: r.byte_string()?,
            requested_session_timeout: r.f64()?,
            max_response_message_size: r.u32()?,
        })
    }
}

/// CreateSessionResponse.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateSessionResponse {
    /// Common header.
    pub response_header: ResponseHeader,
    /// Server-assigned session id.
    pub session_id: NodeId,
    /// Token to present in subsequent request headers.
    pub authentication_token: NodeId,
    /// Granted timeout in milliseconds.
    pub revised_session_timeout: f64,
    /// Server nonce.
    pub server_nonce: Option<Vec<u8>>,
    /// Server certificate.
    pub server_certificate: Option<Vec<u8>>,
    /// Copy of the server's endpoints (spec requires this so clients can
    /// verify the endpoint description they used was genuine).
    pub server_endpoints: Vec<EndpointDescription>,
    /// Signature over client certificate + client nonce.
    pub server_signature: SignatureData,
    /// Maximum request size the server accepts.
    pub max_request_message_size: u32,
}

impl UaEncode for CreateSessionResponse {
    fn encode(&self, w: &mut Encoder) {
        self.response_header.encode(w);
        self.session_id.encode(w);
        self.authentication_token.encode(w);
        w.f64(self.revised_session_timeout);
        w.byte_string(self.server_nonce.as_deref());
        w.byte_string(self.server_certificate.as_deref());
        w.array(&self.server_endpoints, |w, e| e.encode(w));
        // serverSoftwareCertificates: historical field, always null array.
        w.i32(-1);
        self.server_signature.encode(w);
        w.u32(self.max_request_message_size);
    }
}

impl UaDecode for CreateSessionResponse {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let response_header = ResponseHeader::decode(r)?;
        let session_id = NodeId::decode(r)?;
        let authentication_token = NodeId::decode(r)?;
        let revised_session_timeout = r.f64()?;
        let server_nonce = r.byte_string()?;
        let server_certificate = r.byte_string()?;
        let server_endpoints = r.array(EndpointDescription::decode)?;
        // Skip software certificates (null or empty array).
        let n = r.i32()?;
        if n > 0 {
            return Err(CodecError::Invalid("software certificates unsupported"));
        }
        Ok(CreateSessionResponse {
            response_header,
            session_id,
            authentication_token,
            revised_session_timeout,
            server_nonce,
            server_certificate,
            server_endpoints,
            server_signature: SignatureData::decode(r)?,
            max_request_message_size: r.u32()?,
        })
    }
}

/// The user identity token carried inside ActivateSession.
#[derive(Debug, Clone, PartialEq)]
pub enum IdentityToken {
    /// Anonymous access — the misconfiguration §5.4 measures.
    Anonymous {
        /// Policy id from the endpoint's token policies.
        policy_id: Option<String>,
    },
    /// Username/password.
    UserName {
        /// Policy id.
        policy_id: Option<String>,
        /// The user name.
        user_name: Option<String>,
        /// The password (possibly encrypted with the server key).
        password: Option<Vec<u8>>,
        /// Encryption algorithm URI (`None` = plaintext).
        encryption_algorithm: Option<String>,
    },
    /// X.509 client certificate.
    X509 {
        /// Policy id.
        policy_id: Option<String>,
        /// The certificate.
        certificate_data: Option<Vec<u8>>,
    },
    /// Token issued by an external authority.
    Issued {
        /// Policy id.
        policy_id: Option<String>,
        /// The opaque token.
        token_data: Option<Vec<u8>>,
        /// Encryption algorithm URI.
        encryption_algorithm: Option<String>,
    },
}

impl IdentityToken {
    /// Wraps the token in an extension object with the correct type id.
    pub fn to_extension_object(&self) -> ExtensionObject {
        let mut w = Encoder::new();
        let type_id = match self {
            IdentityToken::Anonymous { policy_id } => {
                w.string(policy_id.as_deref());
                encoding_ids::ANONYMOUS_IDENTITY_TOKEN
            }
            IdentityToken::UserName {
                policy_id,
                user_name,
                password,
                encryption_algorithm,
            } => {
                w.string(policy_id.as_deref());
                w.string(user_name.as_deref());
                w.byte_string(password.as_deref());
                w.string(encryption_algorithm.as_deref());
                encoding_ids::USERNAME_IDENTITY_TOKEN
            }
            IdentityToken::X509 {
                policy_id,
                certificate_data,
            } => {
                w.string(policy_id.as_deref());
                w.byte_string(certificate_data.as_deref());
                encoding_ids::X509_IDENTITY_TOKEN
            }
            IdentityToken::Issued {
                policy_id,
                token_data,
                encryption_algorithm,
            } => {
                w.string(policy_id.as_deref());
                w.byte_string(token_data.as_deref());
                w.string(encryption_algorithm.as_deref());
                encoding_ids::ISSUED_IDENTITY_TOKEN
            }
        };
        ExtensionObject {
            type_id: NodeId::numeric(0, type_id),
            body: Some(w.finish()),
        }
    }

    /// Parses a token from an extension object.
    pub fn from_extension_object(eo: &ExtensionObject) -> Result<Self, CodecError> {
        let type_id = eo
            .type_id
            .as_numeric()
            .ok_or(CodecError::Invalid("non-numeric identity token type"))?;
        if eo.type_id.namespace != 0 {
            return Err(CodecError::Invalid("identity token type not in ns 0"));
        }
        let body = eo
            .body
            .as_deref()
            .ok_or(CodecError::Invalid("identity token without body"))?;
        let mut r = Decoder::new(body);
        let token = match type_id {
            encoding_ids::ANONYMOUS_IDENTITY_TOKEN => IdentityToken::Anonymous {
                policy_id: r.string()?,
            },
            encoding_ids::USERNAME_IDENTITY_TOKEN => IdentityToken::UserName {
                policy_id: r.string()?,
                user_name: r.string()?,
                password: r.byte_string()?,
                encryption_algorithm: r.string()?,
            },
            encoding_ids::X509_IDENTITY_TOKEN => IdentityToken::X509 {
                policy_id: r.string()?,
                certificate_data: r.byte_string()?,
            },
            encoding_ids::ISSUED_IDENTITY_TOKEN => IdentityToken::Issued {
                policy_id: r.string()?,
                token_data: r.byte_string()?,
                encryption_algorithm: r.string()?,
            },
            other => {
                return Err(CodecError::InvalidDiscriminant {
                    what: "IdentityToken type",
                    value: other,
                })
            }
        };
        if !r.is_empty() {
            return Err(CodecError::Invalid("trailing bytes in identity token"));
        }
        Ok(token)
    }
}

/// ActivateSessionRequest.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivateSessionRequest {
    /// Common header (carries the authentication token from
    /// CreateSession).
    pub request_header: RequestHeader,
    /// Signature over server certificate + server nonce.
    pub client_signature: SignatureData,
    /// Locales.
    pub locale_ids: Vec<String>,
    /// The identity token, wrapped.
    pub user_identity_token: ExtensionObject,
    /// Signature binding the identity token (X.509 tokens).
    pub user_token_signature: SignatureData,
}

impl UaEncode for ActivateSessionRequest {
    fn encode(&self, w: &mut Encoder) {
        self.request_header.encode(w);
        self.client_signature.encode(w);
        // clientSoftwareCertificates: null array.
        w.i32(-1);
        w.array(&self.locale_ids, |w, s| w.string(Some(s)));
        self.user_identity_token.encode(w);
        self.user_token_signature.encode(w);
    }
}

impl UaDecode for ActivateSessionRequest {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let request_header = RequestHeader::decode(r)?;
        let client_signature = SignatureData::decode(r)?;
        let n = r.i32()?;
        if n > 0 {
            return Err(CodecError::Invalid("software certificates unsupported"));
        }
        Ok(ActivateSessionRequest {
            request_header,
            client_signature,
            locale_ids: r.array(|r| r.string().map(Option::unwrap_or_default))?,
            user_identity_token: ExtensionObject::decode(r)?,
            user_token_signature: SignatureData::decode(r)?,
        })
    }
}

/// ActivateSessionResponse.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivateSessionResponse {
    /// Common header.
    pub response_header: ResponseHeader,
    /// Fresh server nonce.
    pub server_nonce: Option<Vec<u8>>,
    /// Per-software-certificate results (always empty).
    pub results: Vec<StatusCode>,
}

impl UaEncode for ActivateSessionResponse {
    fn encode(&self, w: &mut Encoder) {
        self.response_header.encode(w);
        w.byte_string(self.server_nonce.as_deref());
        w.array(&self.results, |w, s| s.encode(w));
        encode_null_diagnostics(w);
    }
}

impl UaDecode for ActivateSessionResponse {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let response_header = ResponseHeader::decode(r)?;
        let server_nonce = r.byte_string()?;
        let results = r.array(StatusCode::decode)?;
        decode_null_diagnostics(r)?;
        Ok(ActivateSessionResponse {
            response_header,
            server_nonce,
            results,
        })
    }
}

/// CloseSessionRequest.
#[derive(Debug, Clone, PartialEq)]
pub struct CloseSessionRequest {
    /// Common header.
    pub request_header: RequestHeader,
    /// Whether to delete subscriptions (ignored; none exist).
    pub delete_subscriptions: bool,
}

impl UaEncode for CloseSessionRequest {
    fn encode(&self, w: &mut Encoder) {
        self.request_header.encode(w);
        w.boolean(self.delete_subscriptions);
    }
}

impl UaDecode for CloseSessionRequest {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(CloseSessionRequest {
            request_header: RequestHeader::decode(r)?,
            delete_subscriptions: r.boolean()?,
        })
    }
}

/// CloseSessionResponse.
#[derive(Debug, Clone, PartialEq)]
pub struct CloseSessionResponse {
    /// Common header.
    pub response_header: ResponseHeader,
}

impl UaEncode for CloseSessionResponse {
    fn encode(&self, w: &mut Encoder) {
        self.response_header.encode(w);
    }
}

impl UaDecode for CloseSessionResponse {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(CloseSessionResponse {
            response_header: ResponseHeader::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_types::UaDateTime;

    fn header() -> RequestHeader {
        RequestHeader::new(NodeId::numeric(0, 7), 2, UaDateTime::from_unix_seconds(0))
    }

    #[test]
    fn create_session_roundtrip() {
        let req = CreateSessionRequest {
            request_header: header(),
            client_description: ApplicationDescription::server(
                "urn:scanner",
                "research scan - contact: research@example.org",
            ),
            server_uri: None,
            endpoint_url: Some("opc.tcp://h:4840/".into()),
            session_name: Some("scan".into()),
            client_nonce: Some(vec![1; 32]),
            client_certificate: Some(vec![0xCC; 64]),
            requested_session_timeout: 120_000.0,
            max_response_message_size: 1 << 20,
        };
        let bytes = req.encode_to_vec();
        assert_eq!(CreateSessionRequest::decode_all(&bytes).unwrap(), req);
    }

    #[test]
    fn create_session_response_roundtrip() {
        let resp = CreateSessionResponse {
            response_header: ResponseHeader::good(2, UaDateTime::from_unix_seconds(0)),
            session_id: NodeId::numeric(1, 1000),
            authentication_token: NodeId::opaque(0, vec![5; 16]),
            revised_session_timeout: 60_000.0,
            server_nonce: Some(vec![2; 32]),
            server_certificate: Some(vec![0xAB; 80]),
            server_endpoints: vec![],
            server_signature: SignatureData::default(),
            max_request_message_size: 65536,
        };
        let bytes = resp.encode_to_vec();
        assert_eq!(CreateSessionResponse::decode_all(&bytes).unwrap(), resp);
    }

    #[test]
    fn identity_tokens_roundtrip() {
        for token in [
            IdentityToken::Anonymous {
                policy_id: Some("anon".into()),
            },
            IdentityToken::UserName {
                policy_id: Some("user".into()),
                user_name: Some("operator".into()),
                password: Some(b"secret".to_vec()),
                encryption_algorithm: None,
            },
            IdentityToken::X509 {
                policy_id: Some("cert".into()),
                certificate_data: Some(vec![1, 2, 3]),
            },
            IdentityToken::Issued {
                policy_id: Some("issued".into()),
                token_data: Some(vec![9]),
                encryption_algorithm: Some("http://kerberos".into()),
            },
        ] {
            let eo = token.to_extension_object();
            assert_eq!(IdentityToken::from_extension_object(&eo).unwrap(), token);
        }
    }

    #[test]
    fn identity_token_bad_type_rejected() {
        let eo = ExtensionObject {
            type_id: NodeId::numeric(0, 9999),
            body: Some(vec![0xFF, 0xFF, 0xFF, 0xFF]),
        };
        assert!(IdentityToken::from_extension_object(&eo).is_err());
        let eo = ExtensionObject::null();
        assert!(IdentityToken::from_extension_object(&eo).is_err());
    }

    #[test]
    fn activate_session_roundtrip() {
        let req = ActivateSessionRequest {
            request_header: header(),
            client_signature: SignatureData::default(),
            locale_ids: vec!["en".into()],
            user_identity_token: IdentityToken::Anonymous {
                policy_id: Some("anon".into()),
            }
            .to_extension_object(),
            user_token_signature: SignatureData::default(),
        };
        let bytes = req.encode_to_vec();
        assert_eq!(ActivateSessionRequest::decode_all(&bytes).unwrap(), req);

        let resp = ActivateSessionResponse {
            response_header: ResponseHeader::with_status(
                2,
                UaDateTime::from_unix_seconds(0),
                StatusCode::BAD_IDENTITY_TOKEN_REJECTED,
            ),
            server_nonce: None,
            results: vec![],
        };
        let bytes = resp.encode_to_vec();
        assert_eq!(ActivateSessionResponse::decode_all(&bytes).unwrap(), resp);
    }

    #[test]
    fn close_session_roundtrip() {
        let req = CloseSessionRequest {
            request_header: header(),
            delete_subscriptions: true,
        };
        let bytes = req.encode_to_vec();
        assert_eq!(CloseSessionRequest::decode_all(&bytes).unwrap(), req);
        let resp = CloseSessionResponse {
            response_header: ResponseHeader::good(2, UaDateTime::from_unix_seconds(0)),
        };
        let bytes = resp.encode_to_vec();
        assert_eq!(CloseSessionResponse::decode_all(&bytes).unwrap(), resp);
    }
}
