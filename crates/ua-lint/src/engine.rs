//! Workspace walking, rule scoping, suppression application, and
//! diagnostic rendering.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer;
use crate::manifest;
use crate::rules::{self, Finding, Rule};
use crate::suppress::{self, Suppressions};

/// Crates whose iteration order reaches `ScanRecord` streams,
/// summaries, or reports — the `unordered-iteration` rule's scope.
const OUTPUT_PRODUCING: [&str; 3] = ["scanner", "assessment", "population"];

/// The benchmark harness measures real time by design; wall-clock and
/// panic-hygiene rules do not apply there.
const BENCH_CRATE: &str = "bench";

/// The vendored RNG shim defines the seeded API everything else uses.
const RAND_CRATE: &str = "rand";

/// What part of a crate a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    Lib,
    Test,
    Example,
    Bench,
}

/// Where a file sits in the workspace, for rule scoping.
#[derive(Debug, Clone)]
pub struct FileCtx {
    pub crate_name: String,
    pub kind: FileKind,
}

/// Classify a repo-relative path (forward slashes).
pub fn classify(rel: &str) -> FileCtx {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_name = match parts.as_slice() {
        ["crates", name, ..] => (*name).to_string(),
        _ => "opcua-study".to_string(),
    };
    let kind = if parts.contains(&"tests") {
        FileKind::Test
    } else if parts.contains(&"examples") {
        FileKind::Example
    } else if parts.contains(&"benches") {
        FileKind::Bench
    } else {
        FileKind::Lib
    };
    FileCtx { crate_name, kind }
}

/// Which rules run on a given file. Scoping is part of each rule's
/// contract — see `Rule::summary` and the "Invariants & lints" section
/// of examples/README.md.
pub fn applicable_rules(ctx: &FileCtx) -> Vec<Rule> {
    let mut rules = Vec::new();
    // Determinism rules apply to tests and examples too: a test that
    // sleeps or reads entropy flakes just as hard as a library that
    // does.
    if ctx.crate_name != BENCH_CRATE {
        rules.push(Rule::WallClock);
    }
    if ctx.crate_name != RAND_CRATE {
        rules.push(Rule::AmbientRandomness);
    }
    // Exhaustiveness over the payload enum matters wherever records are
    // consumed — library, test, example, and bench code alike.
    rules.push(Rule::PayloadExhaustive);
    if ctx.kind == FileKind::Lib {
        if OUTPUT_PRODUCING.contains(&ctx.crate_name.as_str()) {
            rules.push(Rule::UnorderedIteration);
        }
        if ctx.crate_name != BENCH_CRATE {
            rules.push(Rule::PanicHygiene);
        }
        rules.push(Rule::NestedLock);
    }
    rules
}

/// A finding that survived suppression, located in the workspace.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: Rule,
    pub file: String,
    pub line: u32,
    pub message: String,
}

/// The result of a full workspace check.
#[derive(Debug, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
    pub suppressed: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Human-readable rendering, one block per diagnostic.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n    hint: {}\n",
                d.file,
                d.line,
                d.rule.id(),
                d.message,
                d.rule.hint()
            ));
        }
        out.push_str(&format!(
            "ua-lint: {} finding(s), {} suppressed, {} files scanned\n",
            self.diagnostics.len(),
            self.suppressed,
            self.files_scanned
        ));
        out
    }

    /// Machine-readable rendering (the `--json` flag and the CI
    /// artifact). Hand-rolled — ua-lint has no dependencies to ensure
    /// the hermeticity rule can never be compromised by its enforcer.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"suppressed\": {},\n", self.suppressed));
        out.push_str("  \"findings\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"hint\": {}}}",
                json_str(d.rule.id()),
                json_str(&d.file),
                d.line,
                json_str(&d.message),
                json_str(d.rule.hint())
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lint one Rust source file: run the applicable rules, then apply
/// suppression directives. Returns surviving findings plus the count
/// of suppressed ones.
pub fn lint_rust_source(src: &str, ctx: &FileCtx) -> (Vec<Finding>, usize) {
    let lexed = lexer::lex(src);
    let regions = rules::test_regions(&lexed.tokens);
    let mut findings = Vec::new();
    for rule in applicable_rules(ctx) {
        match rule {
            Rule::WallClock => findings.extend(rules::wall_clock(&lexed)),
            Rule::AmbientRandomness => findings.extend(rules::ambient_randomness(&lexed)),
            Rule::UnorderedIteration => {
                findings.extend(rules::unordered_iteration(&lexed, &regions))
            }
            Rule::PanicHygiene => findings.extend(rules::panic_hygiene(&lexed, &regions)),
            Rule::NestedLock => findings.extend(rules::nested_lock(&lexed, &regions)),
            Rule::PayloadExhaustive => findings.extend(rules::payload_exhaustive(&lexed)),
            Rule::Hermeticity | Rule::BadSuppression => {}
        }
    }
    let sups = suppress::from_comments(&lexed.comments);
    apply_suppressions(findings, sups)
}

/// Lint one manifest file.
pub fn lint_manifest_source(src: &str) -> (Vec<Finding>, usize) {
    let (findings, sups) = manifest::lint_manifest(src);
    apply_suppressions(findings, sups)
}

fn apply_suppressions(findings: Vec<Finding>, sups: Suppressions) -> (Vec<Finding>, usize) {
    let before = findings.len();
    let mut kept: Vec<Finding> = findings
        .into_iter()
        .filter(|f| !sups.directives.iter().any(|s| s.covers(f.rule, f.line)))
        .collect();
    let suppressed = before - kept.len();
    kept.extend(sups.bad);
    (kept, suppressed)
}

/// Walk the workspace at `root` and lint every `.rs` and `Cargo.toml`.
/// `target/`, `.git/`, and any `fixtures/` directory (ua-lint's own
/// seeded-violation corpus) are skipped.
pub fn check_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();

    let mut report = Report::default();
    for path in files {
        let rel = relative(root, &path);
        let src = fs::read_to_string(&path)?;
        let (findings, suppressed) = if rel.ends_with("Cargo.toml") {
            lint_manifest_source(&src)
        } else {
            lint_rust_source(&src, &classify(&rel))
        };
        report.files_scanned += 1;
        report.suppressed += suppressed;
        for f in findings {
            report.diagnostics.push(Diagnostic {
                rule: f.rule,
                file: rel.clone(),
                line: f.line,
                message: f.message,
            });
        }
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

const SKIP_DIRS: [&str; 5] = ["target", ".git", ".github", "fixtures", "node_modules"];

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        let ctx = classify("crates/scanner/src/pipeline.rs");
        assert_eq!(ctx.crate_name, "scanner");
        assert_eq!(ctx.kind, FileKind::Lib);
        assert_eq!(
            classify("crates/scanner/tests/sharding.rs").kind,
            FileKind::Test
        );
        assert_eq!(classify("examples/quickstart.rs").kind, FileKind::Example);
        assert_eq!(classify("src/lib.rs").crate_name, "opcua-study");
        assert_eq!(
            classify("crates/bench/benches/sweep.rs").kind,
            FileKind::Bench
        );
    }

    #[test]
    fn scoping_matrix() {
        let scanner_lib = classify("crates/scanner/src/lib.rs");
        let r = applicable_rules(&scanner_lib);
        assert!(r.contains(&Rule::UnorderedIteration));
        assert!(r.contains(&Rule::PanicHygiene));
        assert!(r.contains(&Rule::WallClock));

        let bench = classify("crates/bench/src/lib.rs");
        let r = applicable_rules(&bench);
        assert!(!r.contains(&Rule::WallClock));
        assert!(!r.contains(&Rule::PanicHygiene));

        let test_file = classify("crates/netsim/tests/foo.rs");
        let r = applicable_rules(&test_file);
        assert!(r.contains(&Rule::WallClock));
        assert!(!r.contains(&Rule::PanicHygiene));

        let crypto_lib = classify("crates/ua-crypto/src/bigint.rs");
        assert!(!applicable_rules(&crypto_lib).contains(&Rule::UnorderedIteration));
    }

    #[test]
    fn suppression_filters_and_bad_directives_surface() {
        let ctx = classify("crates/netsim/src/internet.rs");
        let src = "\
fn f() {
    // ua-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
    x.lock().unwrap();
    y.unwrap();
}
// ua-lint: allow(panic-hygiene)
";
        let (findings, suppressed) = lint_rust_source(src, &ctx);
        assert_eq!(suppressed, 1);
        let ids: Vec<&str> = findings.iter().map(|f| f.rule.id()).collect();
        assert!(ids.contains(&"panic-hygiene")); // the unsuppressed y.unwrap()
        assert!(ids.contains(&"bad-suppression")); // missing why
        assert_eq!(findings.len(), 2);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
