//! A minimal Rust lexer: just enough fidelity that rule matching never
//! fires inside a string literal, a comment, or a raw string, and that
//! suppression comments can be tied back to source lines.
//!
//! This is deliberately not a full grammar. It splits a source file
//! into a token stream (identifiers, single-character punctuation,
//! literals, lifetimes) plus a side channel of comments with their
//! line numbers. Multi-character operators arrive as consecutive
//! single-character punctuation tokens; rule patterns match them that
//! way (`::` is `:`, `:`).

/// What a token is, as far as the rule engine cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `unwrap`, `r#type`).
    Ident,
    /// One punctuation character (`.`, `:`, `!`, `{`, …).
    Punct,
    /// String, byte-string, raw-string, or char/byte literal. The rule
    /// engine never looks inside these — that is the whole point.
    Str,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// A single token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True when this token is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }
}

/// A comment (line or block, doc or plain) with the line it starts on.
/// Suppression annotations are parsed out of these.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Lex `src` into tokens and comments. Unterminated constructs (a
/// string or block comment that runs to EOF) terminate the scan
/// gracefully rather than erroring: a half-written file should produce
/// diagnostics for what is there, not a parse failure.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line),
                '\'' => self.char_or_lifetime(line),
                'r' | 'b' => self.maybe_prefixed_literal(line),
                c if is_ident_start(c) => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                _ => {
                    let c = self.bump().unwrap_or_default();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { line, text });
    }

    /// A `"`-delimited string with escape handling.
    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // whatever is escaped, including `"` and `\`
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Str, String::new(), line);
    }

    /// `'a` (lifetime), `'a'`/`'\n'` (char literal). The heuristic:
    /// after the quote, an identifier character NOT followed by a
    /// closing quote is a lifetime.
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // opening quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume escape then closing quote.
                self.bump();
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Str, String::new(), line);
            }
            Some(c) if is_ident_start(c) && self.peek(1) != Some('\'') => {
                let mut name = String::from("'");
                while let Some(c) = self.peek(0) {
                    if is_ident_continue(c) {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Lifetime, name, line);
            }
            Some(_) => {
                self.bump(); // the char itself
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::Str, String::new(), line);
            }
            None => {}
        }
    }

    /// Entry point for anything starting with `r` or `b`: raw strings
    /// (`r"…"`, `r#"…"#`), byte strings (`b"…"`, `br#"…"#`), byte chars
    /// (`b'x'`), raw identifiers (`r#type`), or a plain identifier that
    /// happens to start with those letters.
    fn maybe_prefixed_literal(&mut self, line: u32) {
        let c0 = self.peek(0);
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        match (c0, c1) {
            (Some('r'), Some('"')) => {
                self.bump();
                self.raw_string(line, 0);
            }
            (Some('r'), Some('#')) => {
                // Count hashes: raw string if they lead to `"`, raw ident otherwise.
                let mut hashes = 0;
                while self.peek(1 + hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(1 + hashes) == Some('"') {
                    self.bump(); // r
                    for _ in 0..hashes {
                        self.bump();
                    }
                    self.raw_string(line, hashes);
                } else {
                    // Raw identifier r#name: lex as the identifier `name`.
                    self.bump(); // r
                    self.bump(); // #
                    self.ident(line);
                }
            }
            (Some('b'), Some('"')) => {
                self.bump();
                self.string(line);
            }
            (Some('b'), Some('\'')) => {
                self.bump();
                self.char_or_lifetime(line);
            }
            (Some('b'), Some('r')) if c2 == Some('"') || c2 == Some('#') => {
                let mut hashes = 0;
                while self.peek(2 + hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(2 + hashes) == Some('"') {
                    self.bump(); // b
                    self.bump(); // r
                    for _ in 0..hashes {
                        self.bump();
                    }
                    self.raw_string(line, hashes);
                } else {
                    self.ident(line);
                }
            }
            _ => self.ident(line),
        }
    }

    /// Scan a raw string body after the opening hashes have been
    /// consumed; `hashes` is the number of `#` needed to close it.
    fn raw_string(&mut self, line: u32, hashes: usize) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0;
                while matched < hashes && self.peek(0) == Some('#') {
                    self.bump();
                    matched += 1;
                }
                if matched == hashes {
                    break;
                }
            }
        }
        self.push(TokKind::Str, String::new(), line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if text.is_empty() {
            // Defensive: never loop forever on unexpected input.
            self.bump();
            return;
        }
        self.push(TokKind::Ident, text, line);
    }

    /// Numbers need just enough care that `0..10` stays a number, a
    /// range operator, and a number — not a malformed float.
    fn number(&mut self, line: u32) {
        let mut text = String::new();
        // Integer part, including 0x/0o/0b digits and `_` separators;
        // type suffixes (u32, f64) ride along as identifier chars.
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part only when `.` is followed by a digit (so `.`
        // followed by `.` or an identifier is left for the next token).
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            text.push('.');
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.push(TokKind::Num, text, line);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            // Instant::now() in a comment
            /* HashMap in a block /* nested */ comment */
            let s = "Instant::now()";
            let r = r#"thread::sleep"#;
            let ok = real_ident;
        "##;
        let names = idents(src);
        assert!(!names.iter().any(|n| n == "Instant" || n == "HashMap"));
        assert!(names.iter().any(|n| n == "real_ident"));
    }

    #[test]
    fn comments_carry_lines() {
        let lexed = lex("let a = 1;\n// ua-lint: allow(wall-clock) -- test\nlet b = 2;\n");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("ua-lint"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn escaped_quote_in_char_literal() {
        let names = idents(r"let q = '\''; let after = ok;");
        assert!(names.iter().any(|n| n == "after"));
    }

    #[test]
    fn raw_identifier_lexes_as_ident() {
        let names = idents("let r#type = 1; let x = r#fn;");
        assert!(names.iter().any(|n| n == "type"));
        assert!(names.iter().any(|n| n == "fn"));
    }

    #[test]
    fn raw_string_with_hashes_and_quotes() {
        let names = idents(r###"let s = r##"a "#" Instant::now() b"##; let tail = ok;"###);
        assert!(!names.iter().any(|n| n == "Instant"));
        assert!(names.iter().any(|n| n == "tail"));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let lexed = lex("for i in 0..10 { let x = 1.5; let y = 2.pow(3); }");
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5", "2", "3"]);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("pow")));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let names = idents(r##"let a = b"Instant"; let b = b'x'; let c = br#"sleep"#; done"##);
        assert!(!names.iter().any(|n| n == "Instant" || n == "sleep"));
        assert!(names.iter().any(|n| n == "done"));
    }
}
