//! Per-site suppression comments.
//!
//! A finding on line N is waived by a comment on line N or N-1 whose
//! content (after comment markers) starts with the marker `ua-lint:`
//! followed by, e.g., `allow(panic-hygiene) -- guard poisoning only
//! happens after a prior panic`. The justification after `--` is
//! mandatory: an allow without a why is itself a finding
//! (`bad-suppression`), as is an unknown rule id. Prose that merely
//! *mentions* the syntax mid-comment is ignored — only a comment that
//! leads with the marker is a directive.

use crate::lexer::Comment;
use crate::rules::{Finding, Rule};

/// A parsed, valid suppression directive.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub line: u32,
    pub rules: Vec<Rule>,
}

impl Suppression {
    /// Does this directive waive `rule` for a finding on `line`?
    pub fn covers(&self, rule: Rule, line: u32) -> bool {
        (self.line == line || self.line + 1 == line) && self.rules.contains(&rule)
    }
}

/// Result of scanning one file's comments.
#[derive(Debug, Default)]
pub struct Suppressions {
    pub directives: Vec<Suppression>,
    /// Malformed directives, reported as `bad-suppression` findings.
    pub bad: Vec<Finding>,
}

/// Scan lexed comments (Rust) for directives.
pub fn from_comments(comments: &[Comment]) -> Suppressions {
    let mut out = Suppressions::default();
    for c in comments {
        collect(strip_markers(&c.text), c.line, &mut out);
    }
    out
}

/// Scan one already-extracted comment string (used by the manifest
/// scanner, where comments start with `#`).
pub fn from_comment_text(text: &str, line: u32, out: &mut Suppressions) {
    collect(strip_markers(text), line, out);
}

fn collect(content: &str, line: u32, out: &mut Suppressions) {
    let Some(rest) = content.strip_prefix("ua-lint:") else {
        return;
    };
    match parse_directive(rest.trim_start()) {
        Ok(rules) => out.directives.push(Suppression { line, rules }),
        Err(message) => out.bad.push(Finding {
            rule: Rule::BadSuppression,
            line,
            message,
        }),
    }
}

/// Parse `allow(<rule>[, <rule>…]) -- <why>`.
fn parse_directive(s: &str) -> Result<Vec<Rule>, String> {
    let Some(args_on) = s.strip_prefix("allow(") else {
        return Err(format!(
            "unknown ua-lint directive `{}`: only `allow(<rule>) -- <why>` is supported",
            s.split_whitespace().next().unwrap_or("")
        ));
    };
    let Some(close) = args_on.find(')') else {
        return Err("unclosed `allow(`".into());
    };
    let (args, tail) = (args_on[..close].trim(), args_on[close + 1..].trim());
    let mut rules = Vec::new();
    for raw in args.split(',') {
        let id = raw.trim();
        match Rule::from_id(id) {
            Some(Rule::BadSuppression) => {
                return Err("`bad-suppression` cannot be suppressed".into());
            }
            Some(rule) => rules.push(rule),
            None => {
                return Err(format!(
                    "unknown rule `{id}` in allow(); known rules: {}",
                    known_rule_ids()
                ));
            }
        }
    }
    if rules.is_empty() {
        return Err("empty allow()".into());
    }
    let why = tail.strip_prefix("--").map(str::trim).unwrap_or("");
    if why.is_empty() {
        return Err("missing justification: append ` -- <why>` to the allow".into());
    }
    Ok(rules)
}

fn known_rule_ids() -> String {
    Rule::ALL
        .iter()
        .filter(|r| **r != Rule::BadSuppression)
        .map(|r| r.id())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Remove leading comment punctuation (`/`, `*`, `!`, `#`) and
/// whitespace so the marker check sees the comment's content.
fn strip_markers(text: &str) -> &str {
    text.trim_start_matches(['/', '*', '!', '#', ' ', '\t'])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan(src: &str) -> Suppressions {
        from_comments(&lex(src).comments)
    }

    #[test]
    fn valid_directive_parses() {
        let s = scan("// ua-lint: allow(panic-hygiene) -- poisoning is unreachable\nx.unwrap();\n");
        assert_eq!(s.directives.len(), 1);
        assert!(s.bad.is_empty());
        assert!(s.directives[0].covers(Rule::PanicHygiene, 1));
        assert!(s.directives[0].covers(Rule::PanicHygiene, 2));
        assert!(!s.directives[0].covers(Rule::PanicHygiene, 3));
        assert!(!s.directives[0].covers(Rule::WallClock, 2));
    }

    #[test]
    fn multi_rule_directive() {
        let s = scan("// ua-lint: allow(wall-clock, panic-hygiene) -- bench-only helper\n");
        assert_eq!(s.directives[0].rules.len(), 2);
    }

    #[test]
    fn missing_why_is_bad() {
        let s = scan("// ua-lint: allow(panic-hygiene)\n");
        assert!(s.directives.is_empty());
        assert_eq!(s.bad.len(), 1);
        assert!(s.bad[0].message.contains("justification"));
    }

    #[test]
    fn unknown_rule_is_bad() {
        let s = scan("// ua-lint: allow(no-such-rule) -- whatever\n");
        assert_eq!(s.bad.len(), 1);
        assert!(s.bad[0].message.contains("no-such-rule"));
    }

    #[test]
    fn prose_mentioning_the_syntax_is_ignored() {
        let s = scan("// suppress with a comment like ua-lint: allow(x) -- y\n");
        assert!(s.directives.is_empty() && s.bad.is_empty());
    }

    #[test]
    fn doc_comment_directive_counts() {
        let s = scan("/// ua-lint: allow(nested-lock) -- guard dropped before second lock\n");
        assert_eq!(s.directives.len(), 1);
    }
}
