//! `ua-lint` CLI. `check` lints the workspace and exits non-zero on
//! any unsuppressed finding; `rules` prints the rule table.

use std::path::PathBuf;
use std::process::ExitCode;

use ua_lint::{check_workspace, Rule};

const USAGE: &str = "\
usage: ua-lint <command> [options]

commands:
  check           lint every .rs and Cargo.toml in the workspace
  rules           list the rules, what they protect, and how to suppress

options for `check`:
  --json          emit the machine-readable report instead of human text
  --root <dir>    workspace root (default: the repo containing this crate)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("ua-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("ua-lint: unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "ua-lint: `{}` does not look like a workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::from(2);
    }
    match check_workspace(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_human());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("ua-lint: {err}");
            ExitCode::from(2)
        }
    }
}

/// When run via `cargo run -p ua-lint`, the manifest dir is
/// `crates/ua-lint`; the workspace root is two levels up. Fall back to
/// the current directory for a bare binary invocation.
fn default_root() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let dir = PathBuf::from(dir);
        if let Some(root) = dir.parent().and_then(|p| p.parent()) {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}

fn print_rules() {
    println!("ua-lint rules (suppress per site with a leading-marker comment,");
    println!("e.g. `ua-lint: allow(<rule>) -- <why>` — the why is mandatory):\n");
    for rule in Rule::ALL {
        if rule == Rule::BadSuppression {
            continue;
        }
        println!("  {:<21} {}", rule.id(), rule.summary());
        println!();
    }
    println!(
        "  {:<21} {}",
        Rule::BadSuppression.id(),
        Rule::BadSuppression.summary()
    );
}
