//! The rule set: each rule is a pure function from a token stream to
//! findings. All of them encode an invariant this workspace actually
//! relies on — see `examples/README.md` ("Invariants & lints") for the
//! full rationale per rule.

use crate::lexer::{Lexed, Tok, TokKind};

/// Stable rule identifiers. These appear in diagnostics, in `--json`
/// output, and inside suppression comments, so they are part of the
/// tool's interface and must not be renamed casually.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    WallClock,
    AmbientRandomness,
    UnorderedIteration,
    PanicHygiene,
    NestedLock,
    Hermeticity,
    PayloadExhaustive,
    /// Fired when a suppression comment itself is malformed: unknown
    /// rule id or missing the `-- <why>` justification. Cannot be
    /// suppressed.
    BadSuppression,
}

impl Rule {
    pub const ALL: [Rule; 8] = [
        Rule::WallClock,
        Rule::AmbientRandomness,
        Rule::UnorderedIteration,
        Rule::PanicHygiene,
        Rule::NestedLock,
        Rule::Hermeticity,
        Rule::PayloadExhaustive,
        Rule::BadSuppression,
    ];

    pub fn id(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::AmbientRandomness => "ambient-randomness",
            Rule::UnorderedIteration => "unordered-iteration",
            Rule::PanicHygiene => "panic-hygiene",
            Rule::NestedLock => "nested-lock",
            Rule::Hermeticity => "hermeticity",
            Rule::PayloadExhaustive => "payload-exhaustive",
            Rule::BadSuppression => "bad-suppression",
        }
    }

    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }

    /// One-line statement of what the rule protects.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "wall-clock time (SystemTime, Instant::now, thread::sleep) outside crates/bench; \
                 every component must run on VirtualClock so campaigns replay byte-identically"
            }
            Rule::AmbientRandomness => {
                "entropy-seeded randomness (from_entropy, thread_rng, OsRng, getrandom); all \
                 randomness must derive from the campaign seed via the vendored crates/rand shim"
            }
            Rule::UnorderedIteration => {
                "HashMap/HashSet in output-producing crates (scanner, assessment, population); \
                 their iteration order is nondeterministic and a byte-identity hazard — use \
                 BTreeMap/BTreeSet or prove the order never reaches output"
            }
            Rule::PanicHygiene => {
                "unwrap/expect/panic! in non-test library code; real fallibility wants a typed \
                 error, true invariants want a written justification"
            }
            Rule::NestedLock => {
                "two .lock() calls in one function body; lock-order inversion deadlocks \
                 netsim::Internet under the threaded engine"
            }
            Rule::Hermeticity => {
                "non-path, non-workspace entries in any Cargo.toml dependency table; builds run \
                 hermetically with no registry access"
            }
            Rule::PayloadExhaustive => {
                "`_` arms in matches over ProtocolPayload; a wildcard silently swallows the \
                 records of any protocol suite added later, so consumers undercount instead of \
                 failing to compile"
            }
            Rule::BadSuppression => {
                "suppression comments that name an unknown rule or omit the `-- <why>` \
                 justification"
            }
        }
    }

    /// Fix hint appended to every diagnostic of this rule.
    pub fn hint(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "thread the campaign's VirtualClock through instead; if this site is genuinely \
                 outside the deterministic pipeline, annotate: \
                 // ua-lint: allow(wall-clock) -- <why>"
            }
            Rule::AmbientRandomness => {
                "derive a stream from the campaign seed (SeedableRng::seed_from_u64 or an \
                 rng.fork()); if entropy is truly required, annotate: \
                 // ua-lint: allow(ambient-randomness) -- <why>"
            }
            Rule::UnorderedIteration => {
                "switch to BTreeMap/BTreeSet or sort before iterating; if the order provably \
                 never reaches records, summaries, or reports, annotate: \
                 // ua-lint: allow(unordered-iteration) -- <why>"
            }
            Rule::PanicHygiene => {
                "return a typed error for real fallibility; for a true invariant, annotate: \
                 // ua-lint: allow(panic-hygiene) -- <why>"
            }
            Rule::NestedLock => {
                "drop the first guard before taking the second, or document the lock order: \
                 // ua-lint: allow(nested-lock) -- <why>"
            }
            Rule::Hermeticity => {
                "vendor the crate under crates/ and depend on it by path, or inherit a \
                 workspace dependency; to keep it, annotate in the manifest: \
                 # ua-lint: allow(hermeticity) -- <why>"
            }
            Rule::PayloadExhaustive => {
                "spell out every ProtocolPayload variant so a new suite is a compile error at \
                 this site; if the wildcard is provably variant-independent, annotate: \
                 // ua-lint: allow(payload-exhaustive) -- <why>"
            }
            Rule::BadSuppression => {
                "write `ua-lint: allow(<rule-id>) -- <why>` with a real justification after `--`"
            }
        }
    }
}

/// One raw finding, before suppression filtering.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    pub line: u32,
    pub message: String,
}

/// Token-index ranges to exclude from test-exempt rules: bodies of
/// `#[cfg(test)]` items and `#[test]` functions.
pub fn test_regions(tokens: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let close = match matching(tokens, i + 1, '[', ']') {
                Some(c) => c,
                None => break,
            };
            if attr_is_test(&tokens[i + 2..close]) {
                // Step over any further attributes stacked on the item.
                let mut j = close + 1;
                while j < tokens.len()
                    && tokens[j].is_punct('#')
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    match matching(tokens, j + 1, '[', ']') {
                        Some(c) => j = c + 1,
                        None => return regions,
                    }
                }
                let end = item_end(tokens, j);
                regions.push((i, end));
                i = end + 1;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    regions
}

/// Does an attribute's token body (the part between `[` and `]`) gate
/// the item to test builds? `#[test]` and `#[cfg(test)]` (including
/// `cfg(all(test, …))`) count; `#[cfg(not(test))]` does not.
fn attr_is_test(body: &[Tok]) -> bool {
    if body.len() == 1 && body[0].is_ident("test") {
        return true;
    }
    if body.first().is_some_and(|t| t.is_ident("cfg")) {
        let has_test = body.iter().any(|t| t.is_ident("test"));
        let has_not = body.iter().any(|t| t.is_ident("not"));
        return has_test && !has_not;
    }
    false
}

/// Find the token index of the closing delimiter matching the opener
/// at `open_idx`.
fn matching(tokens: &[Tok], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Index of the last token of the item starting at `start`: either a
/// terminating `;` outside any delimiter, or the `}` closing the first
/// top-level brace block.
fn item_end(tokens: &[Tok], start: usize) -> usize {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut i = start;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if paren == 0 && bracket == 0 {
            if t.is_punct(';') {
                return i;
            }
            if t.is_punct('{') {
                return matching(tokens, i, '{', '}').unwrap_or(tokens.len() - 1);
            }
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

/// A function body: `fn` keyword index, body token range, name, line.
#[derive(Debug)]
pub struct FnSpan {
    pub name: String,
    pub line: u32,
    pub body: (usize, usize),
}

/// Locate every `fn` with a body. Closures are not tracked separately:
/// a closure defined inside a function counts toward that function's
/// body, which is the right granularity for the nested-lock rule.
pub fn fn_spans(tokens: &[Tok]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") {
            let name = tokens
                .get(i + 1)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .unwrap_or_else(|| "<anonymous>".into());
            // The body is the first `{` after the signature, at paren/
            // bracket depth zero; a `;` first means no body (trait
            // method declaration, extern fn).
            let mut paren = 0i32;
            let mut bracket = 0i32;
            let mut j = i + 1;
            let mut body = None;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('(') {
                    paren += 1;
                } else if t.is_punct(')') {
                    paren -= 1;
                } else if t.is_punct('[') {
                    bracket += 1;
                } else if t.is_punct(']') {
                    bracket -= 1;
                } else if paren == 0 && bracket == 0 {
                    if t.is_punct(';') {
                        break;
                    }
                    if t.is_punct('{') {
                        let close = matching(tokens, j, '{', '}')
                            .unwrap_or_else(|| tokens.len().saturating_sub(1));
                        body = Some((j, close));
                        break;
                    }
                }
                j += 1;
            }
            if let Some(body) = body {
                spans.push(FnSpan {
                    name,
                    line: tokens[i].line,
                    body,
                });
                // Continue scanning *inside* the body too: nested fns
                // get their own (overlapping) spans.
            }
        }
        i += 1;
    }
    spans
}

fn in_regions(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(a, b)| a <= idx && idx <= b)
}

/// `wall-clock`: SystemTime anywhere, `Instant::now`, `thread::sleep`.
pub fn wall_clock(lexed: &Lexed) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("SystemTime") {
            out.push(Finding {
                rule: Rule::WallClock,
                line: t.line,
                message: "`SystemTime` reads the wall clock".into(),
            });
        } else if t.is_ident("Instant") && path_call(toks, i, "now") {
            out.push(Finding {
                rule: Rule::WallClock,
                line: t.line,
                message: "`Instant::now()` reads the wall clock".into(),
            });
        } else if t.is_ident("thread") && path_call(toks, i, "sleep") {
            out.push(Finding {
                rule: Rule::WallClock,
                line: t.line,
                message: "`thread::sleep` blocks on real time".into(),
            });
        }
    }
    out
}

/// True when `toks[i]` is followed by `::` `name`.
fn path_call(toks: &[Tok], i: usize, name: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident(name))
}

/// `ambient-randomness`: entropy-seeded RNG constructors.
pub fn ambient_randomness(lexed: &Lexed) -> Vec<Finding> {
    const BANNED: [(&str, &str); 4] = [
        ("from_entropy", "`from_entropy` seeds from OS entropy"),
        (
            "thread_rng",
            "`thread_rng` is ambient, entropy-seeded state",
        ),
        ("OsRng", "`OsRng` draws from the operating system"),
        ("getrandom", "`getrandom` draws from the operating system"),
    ];
    let mut out = Vec::new();
    for t in &lexed.tokens {
        if t.kind != TokKind::Ident {
            continue;
        }
        if let Some((_, msg)) = BANNED.iter().find(|(name, _)| t.text == *name) {
            out.push(Finding {
                rule: Rule::AmbientRandomness,
                line: t.line,
                message: (*msg).into(),
            });
        }
    }
    out
}

/// `unordered-iteration`: any HashMap/HashSet mention in an
/// output-producing crate outside test code. Deliberately coarse — the
/// audit is per *use*, not per iteration site, because a map that is
/// never iterated today grows an iteration tomorrow.
pub fn unordered_iteration(lexed: &Lexed, regions: &[(usize, usize)]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in lexed.tokens.iter().enumerate() {
        if in_regions(regions, i) {
            continue;
        }
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            out.push(Finding {
                rule: Rule::UnorderedIteration,
                line: t.line,
                message: format!(
                    "`{}` in an output-producing crate: iteration order is nondeterministic",
                    t.text
                ),
            });
        }
    }
    out
}

/// `panic-hygiene`: `.unwrap()`, `.expect("…")`, `panic!` outside test
/// code. `.expect(` with a non-string first argument is NOT flagged:
/// the DER decoder in ua-crypto has an `expect(Tag)` parser method
/// returning `Result`, and only `Option::expect`/`Result::expect`
/// (whose argument is a message string) are panic sites.
pub fn panic_hygiene(lexed: &Lexed, regions: &[(usize, usize)]) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if in_regions(regions, i) {
            continue;
        }
        if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_ident("unwrap"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            out.push(Finding {
                rule: Rule::PanicHygiene,
                line: t.line,
                message: "`.unwrap()` in non-test library code".into(),
            });
        } else if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_ident("expect"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.kind == TokKind::Str)
        {
            out.push(Finding {
                rule: Rule::PanicHygiene,
                line: t.line,
                message: "`.expect(\"…\")` in non-test library code".into(),
            });
        } else if t.is_ident("panic")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            // `core::panic!` in a `use` path or macro re-export is the
            // same macro; match the bang form regardless of context.
            && !toks.get(i.wrapping_sub(1)).is_some_and(|t| t.is_punct('.'))
        {
            out.push(Finding {
                rule: Rule::PanicHygiene,
                line: t.line,
                message: "`panic!` in non-test library code".into(),
            });
        }
    }
    out
}

/// `nested-lock`: two or more `.lock(` call sites inside one function
/// body. The finding lands on the *second* site, naming the first, so
/// the suppression (or the fix) sits where the hazard completes.
pub fn nested_lock(lexed: &Lexed, regions: &[(usize, usize)]) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for span in fn_spans(toks) {
        if in_regions(regions, span.body.0) {
            continue;
        }
        let mut sites: Vec<u32> = Vec::new();
        for i in span.body.0..=span.body.1.min(toks.len().saturating_sub(1)) {
            if toks[i].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.is_ident("lock"))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            {
                sites.push(toks[i].line);
            }
        }
        if sites.len() >= 2 {
            out.push(Finding {
                rule: Rule::NestedLock,
                line: sites[1],
                message: format!(
                    "second `.lock()` in fn `{}` (first at line {}): lock-order hazard",
                    span.name, sites[0]
                ),
            });
        }
    }
    out
}

/// `payload-exhaustive`: a `match` that names `ProtocolPayload` (in
/// its scrutinee or arms) must not carry a top-level `_` arm. The
/// payload enum is the extension point of the probe layer: every
/// consumer spelling its variants out is what turns "add a suite" into
/// a compile error at each consumption site instead of a silent
/// undercount.
pub fn payload_exhaustive(lexed: &Lexed) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("match") {
            i += 1;
            continue;
        }
        // The match body: the first `{` after the scrutinee, at paren/
        // bracket depth zero. (Struct literals cannot appear bare in a
        // match scrutinee, so this brace is unambiguous.)
        let mut j = i + 1;
        let (mut paren, mut bracket) = (0i32, 0i32);
        let mut body = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct('[') {
                bracket += 1;
            } else if t.is_punct(']') {
                bracket -= 1;
            } else if paren == 0 && bracket == 0 {
                if t.is_punct('{') {
                    body = Some(j);
                    break;
                }
                if t.is_punct(';') {
                    break;
                }
            }
            j += 1;
        }
        let Some(open) = body else {
            i += 1;
            continue;
        };
        let close = match matching(toks, open, '{', '}') {
            Some(c) => c,
            None => break,
        };
        let mentions_payload = toks[i..=close]
            .iter()
            .any(|t| t.is_ident("ProtocolPayload"));
        if mentions_payload {
            // A wildcard arm is a bare `_` at the top level of the
            // body (outside any nested delimiters), starting a pattern:
            // `_ =>` or `_ if guard =>`. Underscores inside patterns
            // (`OpcUa(_)`, `Foo { x: _ }`) sit at deeper delimiter
            // depth and are fine.
            let (mut p, mut bk, mut br) = (0i32, 0i32, 0i32);
            for k in open + 1..close {
                let t = &toks[k];
                if t.is_punct('(') {
                    p += 1;
                } else if t.is_punct(')') {
                    p -= 1;
                } else if t.is_punct('[') {
                    bk += 1;
                } else if t.is_punct(']') {
                    bk -= 1;
                } else if t.is_punct('{') {
                    br += 1;
                } else if t.is_punct('}') {
                    br -= 1;
                } else if p == 0
                    && bk == 0
                    && br == 0
                    && t.is_ident("_")
                    && toks
                        .get(k + 1)
                        .is_some_and(|n| n.is_ident("if") || n.is_punct('='))
                {
                    out.push(Finding {
                        rule: Rule::PayloadExhaustive,
                        line: t.line,
                        message: "`_` arm in a match over `ProtocolPayload`: a wildcard swallows \
                                  future protocol suites silently"
                            .into(),
                    });
                }
            }
        }
        i = open + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_region_covers_mod_body() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn tail() { y.unwrap(); }\n";
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        let findings = panic_hygiene(&lexed, &regions);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 6);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        assert_eq!(panic_hygiene(&lexed, &regions).len(), 1);
    }

    #[test]
    fn stacked_attributes_stay_in_region() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() { x.unwrap(); } }\nfn live() { y.unwrap(); }\n";
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        let findings = panic_hygiene(&lexed, &regions);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn expect_with_tag_argument_is_not_flagged() {
        let src = "fn f() { let a = seq.expect(tag::OCTET_STRING)?; let b = opt.expect(\"msg\"); }";
        let lexed = lex(src);
        let findings = panic_hygiene(&lexed, &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("expect"));
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn f() { x.unwrap_or_else(|| 0); x.unwrap_or(1); x.unwrap_or_default(); }";
        let lexed = lex(src);
        assert!(panic_hygiene(&lexed, &[]).is_empty());
    }

    #[test]
    fn wall_clock_patterns() {
        let src = "fn f() { let t = Instant::now(); thread::sleep(d); let s: SystemTime = x; }";
        let lexed = lex(src);
        assert_eq!(wall_clock(&lexed).len(), 3);
        // An `Instant` stored or compared, without `::now`, is fine.
        let ok = lex("fn g(deadline: Instant) -> bool { clock.now() >= deadline }");
        assert!(wall_clock(&ok).is_empty());
    }

    #[test]
    fn nested_lock_flags_second_site_only() {
        let src = "fn two() {\n let a = m.lock();\n let b = n.lock();\n}\nfn one() { let a = m.lock(); }\n";
        let lexed = lex(src);
        let findings = nested_lock(&lexed, &[]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
        assert!(findings[0].message.contains("fn `two`"));
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let src = "trait T { fn sig(&self); fn with_default(&self) { a.lock(); b.lock(); } }";
        let lexed = lex(src);
        let spans = fn_spans(&lexed.tokens);
        assert_eq!(spans.len(), 1);
        assert_eq!(nested_lock(&lexed, &[]).len(), 1);
    }
}
