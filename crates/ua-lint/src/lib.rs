//! # ua-lint — the workspace's determinism/hermeticity lint engine
//!
//! Every result this reproduction reports rests on one invariant: the
//! whole pipeline is a pure function of the campaign seed. The CI
//! output diffs enforce that *dynamically*; this crate enforces it
//! *statically*, so a stray `Instant::now()` or an unordered map in an
//! output path is caught at lint time, not whenever a diff happens to
//! disagree.
//!
//! The crate has **zero dependencies** — no `syn`, no `toml`, no
//! registry access. A hand-rolled, comment/string/raw-string-aware
//! lexer ([`lexer`]) feeds a token-stream matcher ([`rules`]); a
//! line-oriented manifest scanner ([`manifest`]) covers Cargo.toml.
//!
//! ## Rules
//!
//! | id | protects |
//! |----|----------|
//! | `wall-clock` | everything runs on `VirtualClock`; no `SystemTime`, `Instant::now`, `thread::sleep` outside `crates/bench` |
//! | `ambient-randomness` | all randomness derives from the campaign seed; no `from_entropy`, `thread_rng`, `OsRng`, `getrandom` |
//! | `unordered-iteration` | no `HashMap`/`HashSet` in the output-producing crates (`scanner`, `assessment`, `population`) |
//! | `panic-hygiene` | no unjustified `unwrap`/`expect("…")`/`panic!` in non-test library code |
//! | `nested-lock` | no two `.lock()` calls in one function body |
//! | `hermeticity` | every Cargo.toml dependency is `path`/`workspace`; no registry or git deps |
//!
//! ## Suppression
//!
//! Waivers are per-site and must carry a justification. On the finding
//! line or the line above, write a comment that leads with the marker,
//! like `ua-lint: allow(panic-hygiene) -- poisoning is unreachable`
//! (in manifests, the same after `#`). A waiver missing its `-- <why>`
//! or naming an unknown rule is itself reported (`bad-suppression`).
//!
//! ## Usage
//!
//! ```text
//! cargo run -p ua-lint -- check            # human diagnostics, exit 1 on findings
//! cargo run -p ua-lint -- check --json     # machine-readable report (the CI artifact)
//! cargo run -p ua-lint -- rules            # rule table with rationale
//! ```

pub mod engine;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod suppress;

pub use engine::{
    applicable_rules, check_workspace, classify, lint_manifest_source, lint_rust_source,
    Diagnostic, FileCtx, FileKind, Report,
};
pub use rules::{Finding, Rule};
