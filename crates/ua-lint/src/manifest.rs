//! The `hermeticity` rule: a minimal Cargo.toml scanner.
//!
//! Builds in this repo run with no registry access, so every
//! dependency in every manifest must resolve inside the workspace:
//! `path = "…"` or `workspace = true` (including the dotted
//! `dep.workspace = true` form). Anything else — a bare version
//! string, a `git = …` table, a `registry = …` table — is a finding.
//!
//! This is a line-oriented scanner, not a TOML parser: it understands
//! exactly the manifest subset cargo workspaces use (section headers,
//! `key = value` lines, inline tables, `[dependencies.name]`
//! subsections, `#` comments) and nothing more.

use crate::rules::{Finding, Rule};
use crate::suppress::{self, Suppressions};

/// Scan one manifest; returns raw findings plus any suppression
/// directives found in `#` comments (applied by the caller alongside
/// the Rust-side flow).
pub fn lint_manifest(src: &str) -> (Vec<Finding>, Suppressions) {
    let mut findings = Vec::new();
    let mut sups = Suppressions::default();

    // Accumulated state for a `[dependencies.name]`-style subsection.
    let mut open_subsection: Option<(String, u32, bool)> = None; // (name, header line, satisfied)

    let mut section = String::new();
    for (idx, raw) in src.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let (code, comment) = split_comment(raw);
        if let Some(text) = comment {
            suppress::from_comment_text(text, line_no, &mut sups);
        }
        let code = code.trim();
        if code.is_empty() {
            continue;
        }

        if code.starts_with('[') {
            // Close any open single-dep subsection before switching.
            if let Some((name, header_line, satisfied)) = open_subsection.take() {
                if !satisfied {
                    findings.push(dep_finding(&name, header_line));
                }
            }
            section = code.trim_matches(['[', ']']).trim().to_string();
            if let Some(dep) = single_dep_subsection(&section) {
                open_subsection = Some((dep.to_string(), line_no, false));
            }
            continue;
        }

        let Some((key, value)) = split_kv(code) else {
            continue;
        };

        if let Some(sub) = open_subsection.as_mut() {
            // Inside `[dependencies.name]`: any `path = …` or
            // `workspace = true` key satisfies the rule.
            if key == "path" || (key == "workspace" && value.trim() == "true") {
                sub.2 = true;
            }
            continue;
        }

        if !is_dep_table(&section) {
            continue;
        }

        // A dependency line inside a `[…dependencies]` table.
        let (dep_name, sub_key) = match key.split_once('.') {
            Some((name, rest)) => (name, Some(rest)),
            None => (key, None),
        };
        let ok = match sub_key {
            // `name.workspace = true` / `name.path = "…"` dotted form.
            Some("workspace") => value.trim() == "true",
            Some("path") => true,
            Some(_) => false, // e.g. `name.version = "1"` alone
            None => value_is_hermetic(value),
        };
        if !ok {
            findings.push(dep_finding(dep_name.trim_matches('"'), line_no));
        }
    }
    if let Some((name, header_line, satisfied)) = open_subsection {
        if !satisfied {
            findings.push(dep_finding(&name, header_line));
        }
    }
    (findings, sups)
}

fn dep_finding(name: &str, line: u32) -> Finding {
    Finding {
        rule: Rule::Hermeticity,
        line,
        message: format!(
            "dependency `{name}` does not resolve inside the workspace (needs `path = …` or \
             `workspace = true`; registry/git dependencies break the hermetic build)"
        ),
    }
}

/// Is `section` a table whose entries are dependencies?
fn is_dep_table(section: &str) -> bool {
    section == "dependencies"
        || section.ends_with(".dependencies")
        || section == "dev-dependencies"
        || section == "build-dependencies"
        || section.ends_with(".dev-dependencies")
        || section.ends_with(".build-dependencies")
}

/// For `[dependencies.foo]`-style headers, the single dependency name.
fn single_dep_subsection(section: &str) -> Option<&str> {
    for marker in [".dependencies.", "dependencies."] {
        if let Some(pos) = section.find(marker) {
            let name = &section[pos + marker.len()..];
            if !name.is_empty()
                && !name.contains('.')
                && is_dep_table(&section[..pos + marker.len() - 1])
            {
                return Some(name);
            }
        }
    }
    None
}

/// Does a dependency *value* pin the dep inside the workspace?
/// `"1.0"` → no. `{ path = "…" }` → yes. `{ workspace = true }` → yes.
/// `{ git = "…" }` / `{ version = "…" }` only → no.
fn value_is_hermetic(value: &str) -> bool {
    let v = value.trim();
    if !v.starts_with('{') {
        return false; // bare version string (or something stranger)
    }
    let body = v.trim_matches(['{', '}']);
    body.split(',').any(|entry| {
        let Some((k, val)) = split_kv(entry.trim()) else {
            return false;
        };
        k == "path" || (k == "workspace" && val.trim() == "true")
    })
}

/// Split a `key = value` line; key is trimmed and unquoted.
fn split_kv(code: &str) -> Option<(&str, &str)> {
    let (k, v) = code.split_once('=')?;
    Some((k.trim().trim_matches('"'), v.trim()))
}

/// Split a manifest line into code and an optional `#` comment,
/// respecting `#` inside quoted strings.
fn split_comment(line: &str) -> (&str, Option<&str>) {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return (&line[..i], Some(&line[i..])),
            _ => {}
        }
    }
    (line, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        lint_manifest(src).0
    }

    #[test]
    fn path_and_workspace_deps_pass() {
        let src = r#"
[dependencies]
netsim = { path = "../netsim" }
scanner.workspace = true
rand = { path = "crates/rand", version = "0.8.99" }
"#;
        assert!(findings(src).is_empty());
    }

    #[test]
    fn registry_and_git_deps_fail() {
        let src = r#"
[dependencies]
serde = "1.0"
syn = { version = "2", features = ["full"] }
tokio = { git = "https://github.com/tokio-rs/tokio" }
"#;
        let f = findings(src);
        assert_eq!(f.len(), 3);
        assert!(f[0].message.contains("serde"));
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn dev_and_build_dependencies_are_checked() {
        let src = "[dev-dependencies]\nquickcheck = \"1\"\n[build-dependencies]\ncc = \"1\"\n";
        assert_eq!(findings(src).len(), 2);
    }

    #[test]
    fn dep_subsection_without_path_fails() {
        let src = "[dependencies.serde]\nversion = \"1\"\nfeatures = [\"derive\"]\n";
        let f = findings(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn dep_subsection_with_path_passes() {
        let src = "[dependencies.netsim]\npath = \"../netsim\"\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn non_dep_sections_are_ignored() {
        let src =
            "[package]\nversion = \"1.0\"\nedition = \"2021\"\n[profile.release]\nlto = \"thin\"\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn workspace_dependencies_table_is_checked() {
        let src =
            "[workspace.dependencies]\nanyhow = \"1\"\nnetsim = { path = \"crates/netsim\" }\n";
        let f = findings(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("anyhow"));
    }

    #[test]
    fn suppression_comment_is_scanned() {
        let src = "[dependencies]\n# ua-lint: allow(hermeticity) -- vendored at build time\nweird = \"1\"\n";
        let (f, sups) = lint_manifest(src);
        assert_eq!(f.len(), 1);
        assert_eq!(sups.directives.len(), 1);
        assert!(sups.directives[0].covers(Rule::Hermeticity, 3));
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let src = "[package]\nrepository = \"https://example.com/#frag\"\n";
        let (f, sups) = lint_manifest(src);
        assert!(f.is_empty() && sups.directives.is_empty());
    }
}
