//! Golden-diagnostic tests: each fixture under `fixtures/` carries
//! seeded violations (and deliberate negatives); its `.expected` file
//! pins the exact diagnostics, line by line. A diff in either
//! direction — a missed violation or a new false positive — fails.

use std::path::{Path, PathBuf};

use ua_lint::{check_workspace, classify, lint_manifest_source, lint_rust_source, Finding};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// Render findings the way the `.expected` files record them.
fn render(findings: &[Finding], suppressed: usize) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by_key(|f| (f.line, f.rule));
    let mut out = String::new();
    for f in sorted {
        out.push_str(&format!("{}: [{}] {}\n", f.line, f.rule.id(), f.message));
    }
    out.push_str(&format!("suppressed: {suppressed}\n"));
    out
}

fn check_rust_fixture(name: &str) {
    // Fixtures are linted as if they lived in an output-producing
    // crate's src tree, so every source rule is in scope.
    let ctx = classify("crates/scanner/src/fixture.rs");
    let src = std::fs::read_to_string(fixture_dir().join(name)).unwrap();
    let (findings, suppressed) = lint_rust_source(&src, &ctx);
    compare(name, render(&findings, suppressed));
}

fn compare(name: &str, actual: String) {
    let expected_path = fixture_dir().join(format!("{name}.expected"));
    // Bless mode: regenerate the goldens after a deliberate change to
    // rule messages or fixtures, then review the diff.
    if std::env::var_os("UA_LINT_BLESS").is_some() {
        std::fs::write(&expected_path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&expected_path).unwrap_or_default();
    assert_eq!(
        actual.trim(),
        expected.trim(),
        "\ngolden mismatch for fixture `{name}`\n--- actual ---\n{actual}\n--- expected ({}) ---\n{expected}",
        expected_path.display()
    );
}

#[test]
fn wall_clock_golden() {
    check_rust_fixture("wall_clock.rs");
}

#[test]
fn ambient_randomness_golden() {
    check_rust_fixture("ambient_randomness.rs");
}

#[test]
fn unordered_iteration_golden() {
    check_rust_fixture("unordered_iteration.rs");
}

#[test]
fn panic_hygiene_golden() {
    check_rust_fixture("panic_hygiene.rs");
}

#[test]
fn nested_lock_golden() {
    check_rust_fixture("nested_lock.rs");
}

#[test]
fn payload_exhaustive_golden() {
    check_rust_fixture("payload_exhaustive.rs");
}

#[test]
fn suppressed_golden() {
    check_rust_fixture("suppressed.rs");
}

#[test]
fn false_positive_corpus_is_silent() {
    let ctx = classify("crates/scanner/src/fixture.rs");
    let src = std::fs::read_to_string(fixture_dir().join("false_positive.rs")).unwrap();
    let (findings, suppressed) = lint_rust_source(&src, &ctx);
    assert_eq!(suppressed, 0);
    assert!(
        findings.is_empty(),
        "false positives:\n{}",
        render(&findings, 0)
    );
}

#[test]
fn hermeticity_golden() {
    let src = std::fs::read_to_string(fixture_dir().join("hermeticity.toml")).unwrap();
    let (findings, suppressed) = lint_manifest_source(&src);
    compare("hermeticity.toml", render(&findings, suppressed));
}

/// The acceptance gate, enforced by `cargo test` itself: the real
/// workspace must lint clean. Any new violation needs a fix or a
/// justified per-site waiver before the suite passes again.
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("ua-lint sits two levels under the workspace root")
        .to_path_buf();
    let report = check_workspace(&root).expect("workspace walk");
    assert!(report.files_scanned > 50, "walk found too few files");
    assert!(
        report.is_clean(),
        "workspace has unsuppressed findings:\n{}",
        report.render_human()
    );
}
