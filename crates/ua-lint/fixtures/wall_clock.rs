//! Seeded violations for the `wall-clock` rule. NOT compiled — this
//! file is a lint fixture, read by tests/golden.rs and skipped by the
//! workspace walk (any `fixtures/` directory is excluded).

use std::time::{Duration, Instant, SystemTime};

fn violations(d: Duration) {
    let t0 = Instant::now();
    std::thread::sleep(d);
    let wall = SystemTime::now();
    let _ = (t0, wall);
}

fn negatives(clock: &VirtualClock, deadline: Instant) {
    // Banned names in comments must not fire: Instant::now(), thread::sleep.
    let msg = "calling Instant::now() or thread::sleep here would be a bug";
    let raw = r#"SystemTime in a raw string"#;
    // Storing or comparing an Instant is fine; only ::now reads the clock.
    let due = clock.now() >= deadline;
    let _ = (msg, raw, due);
}
