//! Seeded violations for the `panic-hygiene` rule. NOT compiled.

fn violations(opt: Option<u32>, res: Result<u32, E>) -> u32 {
    let a = opt.unwrap();
    let b = res.expect("the caller always passes Ok");
    if a + b == 0 {
        panic!("sum vanished");
    }
    a + b
}

fn negatives(seq: &mut Der, opt: Option<u32>) -> Result<u32, E> {
    // A `Result`-returning parser method named `expect` takes a tag
    // argument, not a message string — not a panic site.
    let tbs = seq.expect(tag::OCTET_STRING)?;
    // The non-panicking unwrap_* family is fine.
    let x = opt.unwrap_or(0);
    let y = opt.unwrap_or_else(|| 1);
    let z = opt.unwrap_or_default();
    let doc = "docs may say .unwrap() and panic! freely";
    Ok(tbs + x + y + z)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        if false {
            panic!("test-only panic");
        }
    }
}
