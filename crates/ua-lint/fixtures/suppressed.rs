//! Suppression-comment cases: valid waivers silence findings (and are
//! counted), malformed waivers are findings themselves. NOT compiled.

fn waived(clock: &VirtualClock, opt: Option<u32>) -> u32 {
    // ua-lint: allow(wall-clock) -- fixture: waiver on the line above the site
    let t = Instant::now();
    let v = opt.unwrap(); // ua-lint: allow(panic-hygiene) -- fixture: same-line waiver
    let _ = t;
    v
}

fn still_fires(opt: Option<u32>) -> u32 {
    // A waiver two lines up is out of range.
    // ua-lint: allow(panic-hygiene) -- fixture: too far away to cover

    opt.unwrap()
}

// ua-lint: allow(panic-hygiene)
fn missing_why() {}

// ua-lint: allow(no-such-rule) -- the rule id has a typo
fn unknown_rule() {}
