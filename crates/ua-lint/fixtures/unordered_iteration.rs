//! Seeded violations for the `unordered-iteration` rule (the fixture
//! is linted as if it lived in crates/scanner/src). NOT compiled.

use std::collections::{BTreeMap, HashMap, HashSet};

struct Summary {
    by_policy: HashMap<String, u32>,
    seen: HashSet<u32>,
    ordered: BTreeMap<String, u32>, // fine: deterministic order
}

fn negatives() {
    let prose = "a HashMap here is only a string";
    // HashSet in a comment does not fire either.
    let _ = prose;
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_helpers_may_hash() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert!(m.is_empty());
    }
}
