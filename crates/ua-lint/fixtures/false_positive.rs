//! Pure-negative corpus: every banned token below hides inside a
//! string, a raw string, a byte string, a char position, or a comment,
//! and the `expect` calls are the DER parser's Result-returning
//! method. A single finding on this file is a lexer bug. NOT compiled.

// Comment mentions: Instant::now(), thread::sleep, SystemTime, OsRng,
// HashMap, HashSet, .unwrap(), .expect("x"), panic!, .lock() twice.

/* Block comment too: thread_rng() and from_entropy() and getrandom()
   /* nested: SystemTime::now().unwrap() */ still one comment. */

fn strings() -> Vec<String> {
    vec![
        "Instant::now()".to_string(),
        "thread::sleep(Duration::ZERO)".to_string(),
        r#"SystemTime::now().unwrap()"#.to_string(),
        r##"raw with hashes: "#" HashMap::new() panic!()"##.to_string(),
        String::from_utf8_lossy(b"OsRng HashSet .unwrap()").to_string(),
        "a.lock(); b.lock();".to_string(),
    ]
}

fn der_parser(seq: &mut Der) -> Result<Tbs, DerError> {
    // `expect` with a non-string argument is the decoder API, not
    // Option::expect — it must never trip panic-hygiene.
    let tbs_raw = seq.expect(tag::OCTET_STRING)?;
    let signature = seq.expect(tag::BIT_STRING)?.to_vec();
    Ok(Tbs { tbs_raw, signature })
}

fn unwrap_family(opt: Option<u32>) -> u32 {
    opt.unwrap_or(0) + opt.unwrap_or_else(|| 1) + opt.unwrap_or_default()
}

fn chars_and_lifetimes<'a>(s: &'a str) -> (&'a str, char, char) {
    (s, 'x', '\'')
}
