//! Seeded violations for the `ambient-randomness` rule. NOT compiled.

fn violations() {
    let a = SmallRng::from_entropy();
    let b = thread_rng();
    let c = OsRng.next_u64();
    let mut buf = [0u8; 16];
    getrandom(&mut buf);
    let _ = (a, b, c);
}

fn negatives(seed: u64) {
    // Seed-derived streams are the sanctioned path.
    let rng = SmallRng::seed_from_u64(seed);
    let forked = rng.fork();
    let doc = "never call thread_rng or OsRng in pipeline code";
    let _ = (forked, doc);
}
