//! Seeded violations for the `payload-exhaustive` rule. NOT compiled.

fn swallows_future_suites(r: &ScanRecord) -> usize {
    match &r.payload {
        ProtocolPayload::OpcUa(p) => p.endpoints.len(),
        _ => 0,
    }
}

fn guarded_wildcard(r: &ScanRecord) -> &'static str {
    match &r.payload {
        ProtocolPayload::OpcUa(_) => "opcua",
        _ if r.port == 4843 => "probably-tls",
        ProtocolPayload::UatTls(_) => "uat-tls",
    }
}

fn exhaustive_is_fine(r: &ScanRecord) -> &'static str {
    match &r.payload {
        ProtocolPayload::OpcUa(_) => "opcua",
        ProtocolPayload::UatTls(_) => "uat-tls",
    }
}

fn inner_underscores_are_patterns_not_arms(r: &ScanRecord) -> usize {
    match &r.payload {
        ProtocolPayload::OpcUa(OpcUaPayload { endpoints, .. }) => endpoints.len(),
        ProtocolPayload::UatTls(_) => 0,
    }
}

fn unrelated_matches_may_wildcard(outcome: HostOutcome) -> u8 {
    match outcome {
        HostOutcome::Ok => 0,
        _ => 1,
    }
}

fn nested_unrelated_match_may_wildcard(r: &ScanRecord) -> u8 {
    match &r.payload {
        ProtocolPayload::OpcUa(p) => match p.session {
            SessionOutcome::AnonymousActivated => 1,
            _ => 0,
        },
        ProtocolPayload::UatTls(_) => 2,
    }
}

fn waived_wildcard(r: &ScanRecord) -> bool {
    match &r.payload {
        ProtocolPayload::OpcUa(p) => p.hello_ok,
        // ua-lint: allow(payload-exhaustive) -- label-only dispatch, suite-independent
        _ => false,
    }
}
