//! Seeded violations for the `nested-lock` rule. NOT compiled.

fn hazard(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let ga = a.lock();
    let gb = b.lock();
    *ga + *gb
}

fn single(a: &Mutex<u32>) -> u32 {
    *a.lock()
}

fn also_single(b: &Mutex<u32>) -> u32 {
    *b.lock()
}

trait Locking {
    // A bodyless signature contributes nothing.
    fn sig(&self);
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_double_lock() {
        let (a, b) = (Mutex::new(1), Mutex::new(2));
        assert_eq!(*a.lock() + *b.lock(), 3);
    }
}
