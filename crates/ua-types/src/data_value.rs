//! The `DataValue` composite returned by the Read service.

use crate::basic::{StatusCode, UaDateTime};
use crate::encoding::{CodecError, Decoder, Encoder, UaDecode, UaEncode};
use crate::variant::Variant;

/// A value with quality and timestamps (Part 6 §5.2.2.17).
///
/// All fields are optional on the wire; an encoding-mask byte says which
/// are present. A `Read` of an unreadable node returns a `DataValue` with
/// only `status` set (e.g. `BAD_NOT_READABLE`) — this is exactly how the
/// scanner distinguishes readable from unreadable nodes for Figure 7.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataValue {
    /// The value, absent on error.
    pub value: Option<Variant>,
    /// Status; absent means Good.
    pub status: Option<StatusCode>,
    /// Source timestamp.
    pub source_timestamp: Option<UaDateTime>,
    /// Server timestamp.
    pub server_timestamp: Option<UaDateTime>,
}

impl DataValue {
    /// A good value with no timestamps.
    pub fn new(value: Variant) -> Self {
        DataValue {
            value: Some(value),
            ..Default::default()
        }
    }

    /// A value with both timestamps set to `now`.
    pub fn with_timestamps(value: Variant, now: UaDateTime) -> Self {
        DataValue {
            value: Some(value),
            status: None,
            source_timestamp: Some(now),
            server_timestamp: Some(now),
        }
    }

    /// An error result carrying only a status.
    pub fn error(status: StatusCode) -> Self {
        DataValue {
            status: Some(status),
            ..Default::default()
        }
    }

    /// Effective status (absent = Good).
    pub fn status_code(&self) -> StatusCode {
        self.status.unwrap_or(StatusCode::GOOD)
    }

    /// True if the effective status is good.
    pub fn is_good(&self) -> bool {
        self.status_code().is_good()
    }
}

const MASK_VALUE: u8 = 0x01;
const MASK_STATUS: u8 = 0x02;
const MASK_SOURCE_TS: u8 = 0x04;
const MASK_SERVER_TS: u8 = 0x08;

impl UaEncode for DataValue {
    fn encode(&self, w: &mut Encoder) {
        let mut mask = 0u8;
        if self.value.is_some() {
            mask |= MASK_VALUE;
        }
        if self.status.is_some() {
            mask |= MASK_STATUS;
        }
        if self.source_timestamp.is_some() {
            mask |= MASK_SOURCE_TS;
        }
        if self.server_timestamp.is_some() {
            mask |= MASK_SERVER_TS;
        }
        w.u8(mask);
        if let Some(v) = &self.value {
            v.encode(w);
        }
        if let Some(s) = &self.status {
            s.encode(w);
        }
        if let Some(t) = &self.source_timestamp {
            t.encode(w);
        }
        if let Some(t) = &self.server_timestamp {
            t.encode(w);
        }
    }
}

impl UaDecode for DataValue {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let mask = r.u8()?;
        if mask & !0x0F != 0 {
            return Err(CodecError::InvalidDiscriminant {
                what: "DataValue mask",
                value: mask as u32,
            });
        }
        let value = if mask & MASK_VALUE != 0 {
            Some(Variant::decode(r)?)
        } else {
            None
        };
        let status = if mask & MASK_STATUS != 0 {
            Some(StatusCode::decode(r)?)
        } else {
            None
        };
        let source_timestamp = if mask & MASK_SOURCE_TS != 0 {
            Some(UaDateTime::decode(r)?)
        } else {
            None
        };
        let server_timestamp = if mask & MASK_SERVER_TS != 0 {
            Some(UaDateTime::decode(r)?)
        } else {
            None
        };
        Ok(DataValue {
            value,
            status,
            source_timestamp,
            server_timestamp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_masks() {
        let now = UaDateTime::from_unix_seconds(1_598_745_600);
        for dv in [
            DataValue::default(),
            DataValue::new(Variant::Double(42.0)),
            DataValue::error(StatusCode::BAD_NOT_READABLE),
            DataValue::with_timestamps(Variant::Boolean(true), now),
            DataValue {
                value: Some(Variant::Int32(-1)),
                status: Some(StatusCode::GOOD),
                source_timestamp: Some(now),
                server_timestamp: None,
            },
        ] {
            let bytes = dv.encode_to_vec();
            assert_eq!(DataValue::decode_all(&bytes).unwrap(), dv);
        }
    }

    #[test]
    fn helpers() {
        assert!(DataValue::new(Variant::Byte(1)).is_good());
        let e = DataValue::error(StatusCode::BAD_NOT_READABLE);
        assert!(!e.is_good());
        assert_eq!(e.status_code(), StatusCode::BAD_NOT_READABLE);
        assert_eq!(DataValue::default().status_code(), StatusCode::GOOD);
    }

    #[test]
    fn bad_mask_rejected() {
        assert!(DataValue::decode_all(&[0xF0]).is_err());
    }
}
