//! OPC UA binary encoding (Part 6) primitives.
//!
//! All multi-byte values are little-endian. Strings and byte strings are
//! length-prefixed with an `Int32` where `-1` encodes *null*. The decoder
//! is written for hostile input: every read is bounds-checked, declared
//! lengths are validated against the remaining input, and recursion depth
//! (variants/extension objects) is capped.

/// Maximum declared length accepted for a single string/bytestring/array.
/// A real scanner must not let a malicious server allocate unbounded
/// memory from a four-byte length field.
pub const MAX_DECLARED_LEN: usize = 1 << 24; // 16 MiB

/// Maximum nesting depth for variants / extension objects.
pub const MAX_DEPTH: u32 = 32;

/// Errors produced while decoding binary OPC UA data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// A declared length was negative (other than the null marker) or
    /// exceeded [`MAX_DECLARED_LEN`] or the remaining input.
    BadLength(i64),
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// An enum discriminant or encoding byte was unknown.
    InvalidDiscriminant {
        /// What was being decoded.
        what: &'static str,
        /// The offending value.
        value: u32,
    },
    /// Variant/extension-object nesting exceeded [`MAX_DEPTH`].
    DepthExceeded,
    /// The value was structurally valid but violates a protocol rule.
    Invalid(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::BadLength(l) => write!(f, "bad declared length {l}"),
            CodecError::InvalidUtf8 => write!(f, "invalid UTF-8 in string"),
            CodecError::InvalidDiscriminant { what, value } => {
                write!(f, "invalid {what} discriminant {value}")
            }
            CodecError::DepthExceeded => write!(f, "nesting depth exceeded"),
            CodecError::Invalid(msg) => write!(f, "invalid value: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serializes values into a growable buffer.
pub struct Encoder {
    buf: Vec<u8>,
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder {
            buf: Vec::with_capacity(256),
        }
    }

    /// Creates an empty encoder with `capacity` bytes pre-allocated —
    /// callers that know the final frame size encode with exactly one
    /// allocation.
    pub fn with_capacity(capacity: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Clears the encoder for reuse, keeping the allocation. Encode
    /// loops (chunking, per-message transport framing) reset one
    /// encoder per iteration instead of allocating a fresh buffer.
    pub fn reset(&mut self) {
        self.buf.clear();
    }

    /// Overwrites 4 already-written bytes at `pos` with `v`
    /// little-endian — how framers patch a size field into a header
    /// once the body length is known, without encoding the body into a
    /// separate buffer first. Panics if `pos + 4` exceeds the bytes
    /// written so far.
    pub fn patch_u32(&mut self, pos: usize, v: u32) {
        self.buf[pos..pos + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Finishes encoding, returning the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current length of the encoded output.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Borrows the bytes written so far without consuming the encoder.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Writes raw bytes verbatim.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a boolean as a single byte.
    pub fn boolean(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes an `i16` little-endian.
    pub fn i16(&mut self, v: i16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u16` little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i32` little-endian.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64` little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f32` little-endian.
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` little-endian.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an optional string (`None` → length -1).
    pub fn string(&mut self, v: Option<&str>) {
        match v {
            None => self.i32(-1),
            Some(s) => {
                self.i32(s.len() as i32);
                self.raw(s.as_bytes());
            }
        }
    }

    /// Writes an optional byte string (`None` → length -1).
    pub fn byte_string(&mut self, v: Option<&[u8]>) {
        match v {
            None => self.i32(-1),
            Some(b) => {
                self.i32(b.len() as i32);
                self.raw(b);
            }
        }
    }

    /// Writes an array length prefix followed by each element via `f`.
    pub fn array<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Encoder, &T)) {
        self.i32(items.len() as i32);
        for item in items {
            f(self, item);
        }
    }
}

/// Bounds-checked reader over binary OPC UA data.
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
    depth: u32,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Decoder {
            data,
            pos: 0,
            depth: 0,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when the input is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Enters a nested structure, erroring past [`MAX_DEPTH`].
    pub fn enter(&mut self) -> Result<(), CodecError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(CodecError::DepthExceeded);
        }
        Ok(())
    }

    /// Leaves a nested structure.
    pub fn leave(&mut self) {
        debug_assert!(self.depth > 0);
        self.depth -= 1;
    }

    /// Reads `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::UnexpectedEof)?;
        if end > self.data.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads exactly `N` bytes as a fixed-size array.
    fn fixed_bytes<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        // ua-lint: allow(panic-hygiene) -- raw(N) returned exactly N bytes; the conversion is infallible
        Ok(self.raw(N)?.try_into().unwrap())
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.raw(1)?[0])
    }

    /// Reads a boolean (any nonzero byte is true, per Part 6).
    pub fn boolean(&mut self) -> Result<bool, CodecError> {
        Ok(self.u8()? != 0)
    }

    /// Reads an `i16`.
    pub fn i16(&mut self) -> Result<i16, CodecError> {
        Ok(i16::from_le_bytes(self.fixed_bytes()?))
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.fixed_bytes()?))
    }

    /// Reads an `i32`.
    pub fn i32(&mut self) -> Result<i32, CodecError> {
        Ok(i32::from_le_bytes(self.fixed_bytes()?))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.fixed_bytes()?))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.fixed_bytes()?))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.fixed_bytes()?))
    }

    /// Reads an `f32`.
    pub fn f32(&mut self) -> Result<f32, CodecError> {
        Ok(f32::from_le_bytes(self.fixed_bytes()?))
    }

    /// Reads an `f64`.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.fixed_bytes()?))
    }

    /// Validates a declared length against sanity and remaining input.
    fn checked_len(&self, declared: i32) -> Result<usize, CodecError> {
        if declared < 0 {
            return Err(CodecError::BadLength(declared as i64));
        }
        let len = declared as usize;
        if len > MAX_DECLARED_LEN || len > self.remaining() {
            return Err(CodecError::BadLength(declared as i64));
        }
        Ok(len)
    }

    /// Reads an optional string (-1 → `None`).
    pub fn string(&mut self) -> Result<Option<String>, CodecError> {
        let declared = self.i32()?;
        if declared == -1 {
            return Ok(None);
        }
        let len = self.checked_len(declared)?;
        let raw = self.raw(len)?;
        std::str::from_utf8(raw)
            .map(|s| Some(s.to_string()))
            .map_err(|_| CodecError::InvalidUtf8)
    }

    /// Reads an optional byte string (-1 → `None`).
    pub fn byte_string(&mut self) -> Result<Option<Vec<u8>>, CodecError> {
        let declared = self.i32()?;
        if declared == -1 {
            return Ok(None);
        }
        let len = self.checked_len(declared)?;
        Ok(Some(self.raw(len)?.to_vec()))
    }

    /// Reads an array of values produced by `f`. A length of -1 (null
    /// array) is returned as an empty vector.
    pub fn array<T>(
        &mut self,
        mut f: impl FnMut(&mut Decoder<'a>) -> Result<T, CodecError>,
    ) -> Result<Vec<T>, CodecError> {
        let declared = self.i32()?;
        if declared == -1 {
            return Ok(Vec::new());
        }
        if declared < 0 {
            return Err(CodecError::BadLength(declared as i64));
        }
        let count = declared as usize;
        // Each element takes at least one byte; cap the pre-allocation.
        if count > self.remaining() {
            return Err(CodecError::BadLength(declared as i64));
        }
        let mut out = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

/// A value with an OPC UA binary encoding.
pub trait UaEncode {
    /// Appends the binary form of `self` to the encoder.
    fn encode(&self, w: &mut Encoder);

    /// Convenience: encodes into a fresh byte vector.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut w = Encoder::new();
        self.encode(&mut w);
        w.finish()
    }
}

/// A value decodable from the OPC UA binary encoding.
pub trait UaDecode: Sized {
    /// Reads one value from the decoder.
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError>;

    /// Convenience: decodes from a complete buffer, requiring full
    /// consumption.
    fn decode_all(data: &[u8]) -> Result<Self, CodecError> {
        let mut r = Decoder::new(data);
        let v = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(CodecError::Invalid("trailing bytes"));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut w = Encoder::new();
        w.boolean(true);
        w.u8(0xAB);
        w.i16(-2);
        w.u16(65535);
        w.i32(-100000);
        w.u32(0xDEADBEEF);
        w.i64(i64::MIN);
        w.u64(u64::MAX);
        w.f32(1.5);
        w.f64(-2.25);
        let bytes = w.finish();
        let mut r = Decoder::new(&bytes);
        assert!(r.boolean().unwrap());
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.i16().unwrap(), -2);
        assert_eq!(r.u16().unwrap(), 65535);
        assert_eq!(r.i32().unwrap(), -100000);
        assert_eq!(r.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.i64().unwrap(), i64::MIN);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f32().unwrap(), 1.5);
        assert_eq!(r.f64().unwrap(), -2.25);
        assert!(r.is_empty());
    }

    #[test]
    fn reset_keeps_allocation_and_clears_bytes() {
        let mut w = Encoder::with_capacity(64);
        w.u32(0xAABBCCDD);
        assert_eq!(w.len(), 4);
        w.reset();
        assert!(w.is_empty());
        w.u8(0x01);
        assert_eq!(w.finish(), vec![0x01]);
    }

    #[test]
    fn patch_u32_rewrites_in_place() {
        let mut w = Encoder::new();
        w.u32(0); // placeholder
        w.raw(b"body");
        w.patch_u32(0, w.len() as u32);
        let bytes = w.finish();
        assert_eq!(&bytes[..4], &8u32.to_le_bytes());
        assert_eq!(&bytes[4..], b"body");
    }

    #[test]
    #[should_panic]
    fn patch_u32_out_of_bounds_panics() {
        let mut w = Encoder::new();
        w.u16(7);
        w.patch_u32(0, 1);
    }

    #[test]
    fn little_endian_layout() {
        let mut w = Encoder::new();
        w.u32(0x0102_0304);
        assert_eq!(w.finish(), vec![0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn string_roundtrip_and_null() {
        let mut w = Encoder::new();
        w.string(Some("opc.tcp"));
        w.string(None);
        w.string(Some(""));
        let bytes = w.finish();
        let mut r = Decoder::new(&bytes);
        assert_eq!(r.string().unwrap().as_deref(), Some("opc.tcp"));
        assert_eq!(r.string().unwrap(), None);
        assert_eq!(r.string().unwrap().as_deref(), Some(""));
    }

    #[test]
    fn byte_string_roundtrip() {
        let mut w = Encoder::new();
        w.byte_string(Some(&[1, 2, 3]));
        w.byte_string(None);
        let bytes = w.finish();
        let mut r = Decoder::new(&bytes);
        assert_eq!(r.byte_string().unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(r.byte_string().unwrap(), None);
    }

    #[test]
    fn array_roundtrip() {
        let mut w = Encoder::new();
        w.array(&[10u32, 20, 30], |w, v| w.u32(*v));
        let bytes = w.finish();
        let mut r = Decoder::new(&bytes);
        let v = r.array(|r| r.u32()).unwrap();
        assert_eq!(v, vec![10, 20, 30]);
    }

    #[test]
    fn null_array_is_empty() {
        let mut w = Encoder::new();
        w.i32(-1);
        let bytes = w.finish();
        let mut r = Decoder::new(&bytes);
        let v: Vec<u32> = r.array(|r| r.u32()).unwrap();
        assert!(v.is_empty());
    }

    #[test]
    fn truncated_input_errors() {
        let mut r = Decoder::new(&[0x01, 0x02]);
        assert_eq!(r.u32(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn hostile_length_rejected() {
        // Declared string length far beyond the input.
        let mut w = Encoder::new();
        w.i32(1_000_000);
        let bytes = w.finish();
        let mut r = Decoder::new(&bytes);
        assert!(matches!(r.string(), Err(CodecError::BadLength(_))));
        // Negative length other than -1.
        let mut w = Encoder::new();
        w.i32(-2);
        let bytes = w.finish();
        let mut r = Decoder::new(&bytes);
        assert!(matches!(r.string(), Err(CodecError::BadLength(-2))));
    }

    #[test]
    fn hostile_array_count_rejected() {
        let mut w = Encoder::new();
        w.i32(i32::MAX);
        let bytes = w.finish();
        let mut r = Decoder::new(&bytes);
        assert!(matches!(r.array(|r| r.u8()), Err(CodecError::BadLength(_))));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = Encoder::new();
        w.i32(2);
        w.raw(&[0xFF, 0xFE]);
        let bytes = w.finish();
        let mut r = Decoder::new(&bytes);
        assert_eq!(r.string(), Err(CodecError::InvalidUtf8));
    }

    #[test]
    fn depth_limit() {
        let mut r = Decoder::new(&[]);
        for _ in 0..MAX_DEPTH {
            r.enter().unwrap();
        }
        assert_eq!(r.enter(), Err(CodecError::DepthExceeded));
    }

    #[test]
    fn decode_all_rejects_trailing() {
        struct Byte(#[allow(dead_code)] u8);
        impl UaDecode for Byte {
            fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
                Ok(Byte(r.u8()?))
            }
        }
        assert!(Byte::decode_all(&[1]).is_ok());
        assert!(Byte::decode_all(&[1, 2]).is_err());
    }
}
