//! Composite structures exchanged during discovery: application and
//! endpoint descriptions with their security configuration — the exact
//! data the paper's scanner grabs from every server.

use crate::basic::LocalizedText;
use crate::encoding::{CodecError, Decoder, Encoder, UaDecode, UaEncode};
use crate::policy::{MessageSecurityMode, SecurityPolicy, UserTokenType};

/// The type of an OPC UA application (Part 4 §7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApplicationType {
    /// A server.
    Server,
    /// A client.
    Client,
    /// Both client and server.
    ClientAndServer,
    /// A discovery server — the paper's first host category (42 % of
    /// hosts), which only announces endpoints of other servers.
    DiscoveryServer,
}

impl ApplicationType {
    fn wire(self) -> u32 {
        match self {
            ApplicationType::Server => 0,
            ApplicationType::Client => 1,
            ApplicationType::ClientAndServer => 2,
            ApplicationType::DiscoveryServer => 3,
        }
    }
}

impl UaEncode for ApplicationType {
    fn encode(&self, w: &mut Encoder) {
        w.u32(self.wire());
    }
}

impl UaDecode for ApplicationType {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match r.u32()? {
            0 => Ok(ApplicationType::Server),
            1 => Ok(ApplicationType::Client),
            2 => Ok(ApplicationType::ClientAndServer),
            3 => Ok(ApplicationType::DiscoveryServer),
            other => Err(CodecError::InvalidDiscriminant {
                what: "ApplicationType",
                value: other,
            }),
        }
    }
}

/// Describes an application (Part 4 §7.1). The paper clusters servers by
/// manufacturer through the `application_uri` field (§4).
#[derive(Debug, Clone, PartialEq)]
pub struct ApplicationDescription {
    /// Globally unique application URI, e.g.
    /// `urn:bachmann.info:M1:OpcUaServer:...`.
    pub application_uri: Option<String>,
    /// Product URI.
    pub product_uri: Option<String>,
    /// Human-readable name. The paper's scanner put its contact
    /// information here (Appendix A.2).
    pub application_name: LocalizedText,
    /// Application type.
    pub application_type: ApplicationType,
    /// Gateway server URI (unused here).
    pub gateway_server_uri: Option<String>,
    /// Discovery profile URI (unused here).
    pub discovery_profile_uri: Option<String>,
    /// URLs under which the application can be discovered.
    pub discovery_urls: Vec<String>,
}

impl ApplicationDescription {
    /// Minimal server description with the given URI and name.
    pub fn server(uri: impl Into<String>, name: impl Into<String>) -> Self {
        ApplicationDescription {
            application_uri: Some(uri.into()),
            product_uri: None,
            application_name: LocalizedText::new(name),
            application_type: ApplicationType::Server,
            gateway_server_uri: None,
            discovery_profile_uri: None,
            discovery_urls: Vec::new(),
        }
    }
}

impl UaEncode for ApplicationDescription {
    fn encode(&self, w: &mut Encoder) {
        w.string(self.application_uri.as_deref());
        w.string(self.product_uri.as_deref());
        self.application_name.encode(w);
        self.application_type.encode(w);
        w.string(self.gateway_server_uri.as_deref());
        w.string(self.discovery_profile_uri.as_deref());
        w.array(&self.discovery_urls, |w, url| w.string(Some(url)));
    }
}

impl UaDecode for ApplicationDescription {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(ApplicationDescription {
            application_uri: r.string()?,
            product_uri: r.string()?,
            application_name: LocalizedText::decode(r)?,
            application_type: ApplicationType::decode(r)?,
            gateway_server_uri: r.string()?,
            discovery_profile_uri: r.string()?,
            discovery_urls: r
                .array(|r| r.string()?.ok_or(CodecError::Invalid("null discovery URL")))?,
        })
    }
}

/// A user token policy offered by an endpoint (Part 4 §7.36).
#[derive(Debug, Clone, PartialEq)]
pub struct UserTokenPolicy {
    /// Policy id referenced during ActivateSession.
    pub policy_id: Option<String>,
    /// Token type (anonymous/username/certificate/issued).
    pub token_type: UserTokenType,
    /// Issued-token type URI (issued tokens only).
    pub issued_token_type: Option<String>,
    /// Issuer endpoint URL (issued tokens only).
    pub issuer_endpoint_url: Option<String>,
    /// Security policy protecting the token in transit; `None` means the
    /// endpoint's channel policy applies. Sending a password over a
    /// `None` channel with a `None` token policy is one of the
    /// misconfigurations the recommendations warn about.
    pub security_policy_uri: Option<String>,
}

impl UserTokenPolicy {
    /// Builds a policy of the given type with a conventional id.
    pub fn new(token_type: UserTokenType) -> Self {
        UserTokenPolicy {
            policy_id: Some(token_type.label().trim_end_matches('.').to_string()),
            token_type,
            issued_token_type: None,
            issuer_endpoint_url: None,
            security_policy_uri: None,
        }
    }
}

impl UaEncode for UserTokenPolicy {
    fn encode(&self, w: &mut Encoder) {
        w.string(self.policy_id.as_deref());
        self.token_type.encode(w);
        w.string(self.issued_token_type.as_deref());
        w.string(self.issuer_endpoint_url.as_deref());
        w.string(self.security_policy_uri.as_deref());
    }
}

impl UaDecode for UserTokenPolicy {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(UserTokenPolicy {
            policy_id: r.string()?,
            token_type: UserTokenType::decode(r)?,
            issued_token_type: r.string()?,
            issuer_endpoint_url: r.string()?,
            security_policy_uri: r.string()?,
        })
    }
}

/// An endpoint description (Part 4 §7.10) — the unit of configuration the
/// whole study revolves around (Figure 1).
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointDescription {
    /// Endpoint URL, e.g. `opc.tcp://198.51.100.7:4840/`.
    pub endpoint_url: Option<String>,
    /// The server's application description.
    pub server: ApplicationDescription,
    /// The server's certificate (serialized), delivered during discovery.
    pub server_certificate: Option<Vec<u8>>,
    /// Message security mode of this endpoint.
    pub security_mode: MessageSecurityMode,
    /// Security policy URI of this endpoint.
    pub security_policy_uri: Option<String>,
    /// Supported user identity token policies.
    pub user_identity_tokens: Vec<UserTokenPolicy>,
    /// Transport profile URI.
    pub transport_profile_uri: Option<String>,
    /// Relative security level assigned by the server (higher = stronger).
    pub security_level: u8,
}

impl EndpointDescription {
    /// Parses the security policy URI into a [`SecurityPolicy`], `None`
    /// for unknown URIs.
    pub fn security_policy(&self) -> Option<SecurityPolicy> {
        self.security_policy_uri
            .as_deref()
            .and_then(SecurityPolicy::from_uri)
    }

    /// Token types offered by this endpoint (deduplicated, sorted).
    pub fn token_types(&self) -> Vec<UserTokenType> {
        let mut types: Vec<UserTokenType> = self
            .user_identity_tokens
            .iter()
            .map(|p| p.token_type)
            .collect();
        types.sort();
        types.dedup();
        types
    }

    /// True if anonymous authentication is offered.
    pub fn allows_anonymous(&self) -> bool {
        self.user_identity_tokens
            .iter()
            .any(|p| p.token_type == UserTokenType::Anonymous)
    }
}

impl UaEncode for EndpointDescription {
    fn encode(&self, w: &mut Encoder) {
        w.string(self.endpoint_url.as_deref());
        self.server.encode(w);
        w.byte_string(self.server_certificate.as_deref());
        self.security_mode.encode(w);
        w.string(self.security_policy_uri.as_deref());
        w.array(&self.user_identity_tokens, |w, t| t.encode(w));
        w.string(self.transport_profile_uri.as_deref());
        w.u8(self.security_level);
    }
}

impl UaDecode for EndpointDescription {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(EndpointDescription {
            endpoint_url: r.string()?,
            server: ApplicationDescription::decode(r)?,
            server_certificate: r.byte_string()?,
            security_mode: MessageSecurityMode::decode(r)?,
            security_policy_uri: r.string()?,
            user_identity_tokens: r.array(UserTokenPolicy::decode)?,
            transport_profile_uri: r.string()?,
            security_level: r.u8()?,
        })
    }
}

/// The standard binary transport profile URI.
pub const TRANSPORT_PROFILE_BINARY: &str =
    "http://opcfoundation.org/UA-Profile/Transport/uatcp-uasc-uabinary";

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_endpoint() -> EndpointDescription {
        EndpointDescription {
            endpoint_url: Some("opc.tcp://198.51.100.7:4840/".into()),
            server: ApplicationDescription::server(
                "urn:bachmann.info:M1:OpcUaServer",
                "M1 OPC UA Server",
            ),
            server_certificate: Some(vec![0xDE, 0xAD]),
            security_mode: MessageSecurityMode::SignAndEncrypt,
            security_policy_uri: Some(SecurityPolicy::Basic256Sha256.uri().into()),
            user_identity_tokens: vec![
                UserTokenPolicy::new(UserTokenType::Anonymous),
                UserTokenPolicy::new(UserTokenType::UserName),
            ],
            transport_profile_uri: Some(TRANSPORT_PROFILE_BINARY.into()),
            security_level: 3,
        }
    }

    #[test]
    fn endpoint_roundtrip() {
        let ep = sample_endpoint();
        let bytes = ep.encode_to_vec();
        assert_eq!(EndpointDescription::decode_all(&bytes).unwrap(), ep);
    }

    #[test]
    fn endpoint_policy_parsing() {
        let ep = sample_endpoint();
        assert_eq!(ep.security_policy(), Some(SecurityPolicy::Basic256Sha256));
        let mut bogus = ep.clone();
        bogus.security_policy_uri = Some("http://bogus".into());
        assert_eq!(bogus.security_policy(), None);
    }

    #[test]
    fn endpoint_token_helpers() {
        let ep = sample_endpoint();
        assert!(ep.allows_anonymous());
        assert_eq!(
            ep.token_types(),
            vec![UserTokenType::Anonymous, UserTokenType::UserName]
        );
        let mut no_anon = ep.clone();
        no_anon.user_identity_tokens.remove(0);
        assert!(!no_anon.allows_anonymous());
    }

    #[test]
    fn token_types_deduplicated() {
        let mut ep = sample_endpoint();
        ep.user_identity_tokens
            .push(UserTokenPolicy::new(UserTokenType::Anonymous));
        assert_eq!(
            ep.token_types(),
            vec![UserTokenType::Anonymous, UserTokenType::UserName]
        );
    }

    #[test]
    fn application_description_roundtrip() {
        let mut app = ApplicationDescription::server("urn:x", "X");
        app.discovery_urls = vec!["opc.tcp://10.0.0.1:4840".into()];
        app.application_type = ApplicationType::DiscoveryServer;
        let bytes = app.encode_to_vec();
        assert_eq!(ApplicationDescription::decode_all(&bytes).unwrap(), app);
    }

    #[test]
    fn application_type_invalid_rejected() {
        assert!(ApplicationType::decode_all(&9u32.to_le_bytes()).is_err());
    }

    #[test]
    fn user_token_policy_roundtrip() {
        let mut p = UserTokenPolicy::new(UserTokenType::IssuedToken);
        p.issued_token_type = Some("http://oauth2".into());
        p.issuer_endpoint_url = Some("https://sts.example".into());
        p.security_policy_uri = Some(SecurityPolicy::Basic256Sha256.uri().into());
        let bytes = p.encode_to_vec();
        assert_eq!(UserTokenPolicy::decode_all(&bytes).unwrap(), p);
    }
}
