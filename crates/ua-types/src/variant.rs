//! The `Variant` union type and `ExtensionObject` container.

use crate::basic::{LocalizedText, QualifiedName, StatusCode, UaDateTime};
use crate::encoding::{CodecError, Decoder, Encoder, UaDecode, UaEncode};
use crate::node_id::NodeId;

/// The subset of OPC UA variant scalar types the study's address spaces
/// use. Type ids follow Part 6 Table 1.
#[derive(Debug, Clone, PartialEq)]
pub enum Variant {
    /// No value.
    Empty,
    /// Boolean (type id 1).
    Boolean(bool),
    /// Signed byte (2).
    SByte(i8),
    /// Unsigned byte (3).
    Byte(u8),
    /// Int16 (4).
    Int16(i16),
    /// UInt16 (5).
    UInt16(u16),
    /// Int32 (6).
    Int32(i32),
    /// UInt32 (7).
    UInt32(u32),
    /// Int64 (8).
    Int64(i64),
    /// UInt64 (9).
    UInt64(u64),
    /// Float (10).
    Float(f32),
    /// Double (11).
    Double(f64),
    /// String (12).
    String(Option<String>),
    /// DateTime (13).
    DateTime(UaDateTime),
    /// ByteString (15).
    ByteString(Option<Vec<u8>>),
    /// NodeId (17).
    NodeId(NodeId),
    /// StatusCode (19).
    StatusCode(StatusCode),
    /// QualifiedName (20).
    QualifiedName(QualifiedName),
    /// LocalizedText (21).
    LocalizedText(LocalizedText),
    /// An array of variants, encoded as the element type id with the
    /// array flag. All elements must share the scalar type id.
    Array(Vec<Variant>),
}

impl Variant {
    /// The Part 6 scalar type id; arrays report their element type.
    pub fn type_id(&self) -> u8 {
        match self {
            Variant::Empty => 0,
            Variant::Boolean(_) => 1,
            Variant::SByte(_) => 2,
            Variant::Byte(_) => 3,
            Variant::Int16(_) => 4,
            Variant::UInt16(_) => 5,
            Variant::Int32(_) => 6,
            Variant::UInt32(_) => 7,
            Variant::Int64(_) => 8,
            Variant::UInt64(_) => 9,
            Variant::Float(_) => 10,
            Variant::Double(_) => 11,
            Variant::String(_) => 12,
            Variant::DateTime(_) => 13,
            Variant::ByteString(_) => 15,
            Variant::NodeId(_) => 17,
            Variant::StatusCode(_) => 19,
            Variant::QualifiedName(_) => 20,
            Variant::LocalizedText(_) => 21,
            Variant::Array(items) => items.first().map_or(0, |v| v.type_id()),
        }
    }

    fn encode_scalar_body(&self, w: &mut Encoder) {
        match self {
            Variant::Empty => {}
            Variant::Boolean(v) => w.boolean(*v),
            Variant::SByte(v) => w.u8(*v as u8),
            Variant::Byte(v) => w.u8(*v),
            Variant::Int16(v) => w.i16(*v),
            Variant::UInt16(v) => w.u16(*v),
            Variant::Int32(v) => w.i32(*v),
            Variant::UInt32(v) => w.u32(*v),
            Variant::Int64(v) => w.i64(*v),
            Variant::UInt64(v) => w.u64(*v),
            Variant::Float(v) => w.f32(*v),
            Variant::Double(v) => w.f64(*v),
            Variant::String(v) => w.string(v.as_deref()),
            Variant::DateTime(v) => v.encode(w),
            Variant::ByteString(v) => w.byte_string(v.as_deref()),
            Variant::NodeId(v) => v.encode(w),
            Variant::StatusCode(v) => v.encode(w),
            Variant::QualifiedName(v) => v.encode(w),
            Variant::LocalizedText(v) => v.encode(w),
            Variant::Array(_) => unreachable!("arrays are encoded at the top level"),
        }
    }

    fn decode_scalar_body(r: &mut Decoder<'_>, type_id: u8) -> Result<Variant, CodecError> {
        Ok(match type_id {
            0 => Variant::Empty,
            1 => Variant::Boolean(r.boolean()?),
            2 => Variant::SByte(r.u8()? as i8),
            3 => Variant::Byte(r.u8()?),
            4 => Variant::Int16(r.i16()?),
            5 => Variant::UInt16(r.u16()?),
            6 => Variant::Int32(r.i32()?),
            7 => Variant::UInt32(r.u32()?),
            8 => Variant::Int64(r.i64()?),
            9 => Variant::UInt64(r.u64()?),
            10 => Variant::Float(r.f32()?),
            11 => Variant::Double(r.f64()?),
            12 => Variant::String(r.string()?),
            13 => Variant::DateTime(UaDateTime::decode(r)?),
            15 => Variant::ByteString(r.byte_string()?),
            17 => Variant::NodeId(NodeId::decode(r)?),
            19 => Variant::StatusCode(StatusCode::decode(r)?),
            20 => Variant::QualifiedName(QualifiedName::decode(r)?),
            21 => Variant::LocalizedText(LocalizedText::decode(r)?),
            other => {
                return Err(CodecError::InvalidDiscriminant {
                    what: "Variant type",
                    value: other as u32,
                })
            }
        })
    }
}

const ARRAY_FLAG: u8 = 0x80;

impl UaEncode for Variant {
    fn encode(&self, w: &mut Encoder) {
        match self {
            Variant::Array(items) => {
                let type_id = self.type_id();
                w.u8(type_id | ARRAY_FLAG);
                w.i32(items.len() as i32);
                for item in items {
                    debug_assert_eq!(item.type_id(), type_id, "heterogeneous variant array");
                    item.encode_scalar_body(w);
                }
            }
            scalar => {
                w.u8(scalar.type_id());
                scalar.encode_scalar_body(w);
            }
        }
    }
}

impl UaDecode for Variant {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        r.enter()?;
        let enc = r.u8()?;
        let type_id = enc & 0x3F;
        let result = if enc & ARRAY_FLAG != 0 {
            let declared = r.i32()?;
            if declared < -1 || declared as i64 > r.remaining() as i64 {
                r.leave();
                return Err(CodecError::BadLength(declared as i64));
            }
            let count = declared.max(0) as usize;
            let mut items = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                items.push(Variant::decode_scalar_body(r, type_id)?);
            }
            Ok(Variant::Array(items))
        } else {
            Variant::decode_scalar_body(r, type_id)
        };
        r.leave();
        result
    }
}

/// Well-known binary-encoding node ids (`i=...` in namespace 0) used to
/// tag extension-object bodies. Service ids live in `ua-proto`.
pub mod encoding_ids {
    /// AnonymousIdentityToken binary encoding.
    pub const ANONYMOUS_IDENTITY_TOKEN: u32 = 321;
    /// UserNameIdentityToken binary encoding.
    pub const USERNAME_IDENTITY_TOKEN: u32 = 324;
    /// X509IdentityToken binary encoding.
    pub const X509_IDENTITY_TOKEN: u32 = 327;
    /// IssuedIdentityToken binary encoding.
    pub const ISSUED_IDENTITY_TOKEN: u32 = 940;
}

/// A serialized structure tagged with its data-type encoding id.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExtensionObject {
    /// Binary-encoding node id of the contained type.
    pub type_id: NodeId,
    /// Encoded body; `None` when the object carries no body.
    pub body: Option<Vec<u8>>,
}

impl ExtensionObject {
    /// An empty extension object (null type, no body).
    pub fn null() -> Self {
        Self::default()
    }

    /// Wraps an encodable value with its encoding id.
    pub fn from_value<T: UaEncode>(type_id: NodeId, value: &T) -> Self {
        ExtensionObject {
            type_id,
            body: Some(value.encode_to_vec()),
        }
    }

    /// Decodes the body as `T`, requiring full consumption.
    pub fn decode_body<T: UaDecode>(&self) -> Result<T, CodecError> {
        let body = self
            .body
            .as_deref()
            .ok_or(CodecError::Invalid("extension object has no body"))?;
        T::decode_all(body)
    }
}

impl UaEncode for ExtensionObject {
    fn encode(&self, w: &mut Encoder) {
        self.type_id.encode(w);
        match &self.body {
            None => w.u8(0x00),
            Some(body) => {
                w.u8(0x01);
                w.byte_string(Some(body));
            }
        }
    }
}

impl UaDecode for ExtensionObject {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        r.enter()?;
        let type_id = NodeId::decode(r)?;
        let enc = r.u8()?;
        let body = match enc {
            0x00 => None,
            0x01 => r.byte_string()?,
            other => {
                r.leave();
                return Err(CodecError::InvalidDiscriminant {
                    what: "ExtensionObject encoding",
                    value: other as u32,
                });
            }
        };
        r.leave();
        Ok(ExtensionObject { type_id, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Variant) -> Variant {
        Variant::decode_all(&v.encode_to_vec()).unwrap()
    }

    #[test]
    fn scalar_roundtrips() {
        for v in [
            Variant::Empty,
            Variant::Boolean(true),
            Variant::SByte(-5),
            Variant::Byte(200),
            Variant::Int16(-1000),
            Variant::UInt16(50000),
            Variant::Int32(-7),
            Variant::UInt32(7),
            Variant::Int64(i64::MIN),
            Variant::UInt64(u64::MAX),
            Variant::Float(3.25),
            Variant::Double(core::f64::consts::PI),
            Variant::String(Some("m3InflowPerHour".into())),
            Variant::String(None),
            Variant::DateTime(UaDateTime::from_unix_seconds(1_598_745_600)),
            Variant::ByteString(Some(vec![1, 2, 3])),
            Variant::NodeId(NodeId::string(2, "pump")),
            Variant::StatusCode(StatusCode::BAD_TIMEOUT),
            Variant::QualifiedName(QualifiedName::new(1, "x")),
            Variant::LocalizedText(LocalizedText::new("Füllstand")),
        ] {
            assert_eq!(roundtrip(&v), v, "variant {v:?}");
        }
    }

    #[test]
    fn array_roundtrip() {
        let v = Variant::Array(vec![
            Variant::Double(1.0),
            Variant::Double(2.5),
            Variant::Double(-3.0),
        ]);
        assert_eq!(roundtrip(&v), v);
        let empty = Variant::Array(vec![]);
        assert_eq!(roundtrip(&empty), empty);
    }

    #[test]
    fn array_flag_in_encoding_byte() {
        let v = Variant::Array(vec![Variant::Int32(1)]);
        let bytes = v.encode_to_vec();
        assert_eq!(bytes[0], 6 | 0x80);
    }

    #[test]
    fn unknown_type_rejected() {
        assert!(matches!(
            Variant::decode_all(&[0x3E]),
            Err(CodecError::InvalidDiscriminant { .. })
        ));
    }

    #[test]
    fn hostile_array_count_rejected() {
        // Array of booleans with declared count 2^30 but no data.
        let mut w = Encoder::new();
        w.u8(1 | 0x80);
        w.i32(1 << 30);
        assert!(Variant::decode_all(&w.finish()).is_err());
    }

    #[test]
    fn extension_object_roundtrip() {
        let inner = Variant::String(Some("payload".into()));
        let eo = ExtensionObject::from_value(NodeId::numeric(0, 321), &inner);
        let bytes = eo.encode_to_vec();
        let parsed = ExtensionObject::decode_all(&bytes).unwrap();
        assert_eq!(parsed, eo);
        assert_eq!(parsed.decode_body::<Variant>().unwrap(), inner);
    }

    #[test]
    fn null_extension_object() {
        let eo = ExtensionObject::null();
        let parsed = ExtensionObject::decode_all(&eo.encode_to_vec()).unwrap();
        assert_eq!(parsed.body, None);
        assert!(parsed.decode_body::<Variant>().is_err());
    }

    #[test]
    fn extension_object_bad_encoding_byte() {
        let mut w = Encoder::new();
        NodeId::NULL.encode(&mut w);
        w.u8(0x07);
        assert!(ExtensionObject::decode_all(&w.finish()).is_err());
    }
}
