//! # ua-types
//!
//! OPC UA built-in types and their binary encoding (OPC 10000-6), plus the
//! security-configuration vocabulary the study assesses:
//!
//! * [`encoding`] — little-endian binary codec with hostile-input guards;
//! * [`basic`] — `Guid`, `DateTime`, `StatusCode`, `QualifiedName`,
//!   `LocalizedText`;
//! * [`node_id`] — `NodeId` / `ExpandedNodeId` with compressed encodings;
//! * [`variant`] — the `Variant` union and `ExtensionObject`;
//! * [`policy`] — security modes, the six security policies of the
//!   paper's Table 1 (with metadata: hash functions, key ranges,
//!   deprecation class), and user token types;
//! * [`structures`] — `ApplicationDescription`, `UserTokenPolicy`,
//!   `EndpointDescription`;
//! * [`access`] — node classes, attribute ids, access-level masks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod basic;
pub mod data_value;
pub mod encoding;
pub mod node_id;
pub mod policy;
pub mod structures;
pub mod variant;

pub use access::{AccessLevel, AttributeId, BrowseDirection, NodeClass};
pub use basic::{Guid, LocalizedText, QualifiedName, StatusCode, UaDateTime};
pub use data_value::DataValue;
pub use encoding::{CodecError, Decoder, Encoder, UaDecode, UaEncode};
pub use node_id::{ExpandedNodeId, Identifier, NodeId};
pub use policy::{MessageSecurityMode, PolicyClass, PolicyHash, SecurityPolicy, UserTokenType};
pub use structures::{
    ApplicationDescription, ApplicationType, EndpointDescription, UserTokenPolicy,
    TRANSPORT_PROFILE_BINARY,
};
pub use variant::{encoding_ids, ExtensionObject, Variant};
