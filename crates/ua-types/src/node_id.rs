//! Node identifiers (Part 3 §8.2) and their compressed binary encodings.

use crate::basic::Guid;
use crate::encoding::{CodecError, Decoder, Encoder, UaDecode, UaEncode};

/// The identifier part of a [`NodeId`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Identifier {
    /// Numeric identifier (the common case for standard nodes).
    Numeric(u32),
    /// String identifier, e.g. `"rSetFillLevel"`.
    String(String),
    /// GUID identifier.
    Guid(Guid),
    /// Opaque byte-string identifier.
    Opaque(Vec<u8>),
}

/// A node identifier: namespace index plus identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeId {
    /// Index into the server's namespace array.
    pub namespace: u16,
    /// The identifier.
    pub identifier: Identifier,
}

impl NodeId {
    /// The null node id (ns=0, numeric 0).
    pub const NULL: NodeId = NodeId {
        namespace: 0,
        identifier: Identifier::Numeric(0),
    };

    /// Numeric node id.
    pub fn numeric(namespace: u16, id: u32) -> Self {
        NodeId {
            namespace,
            identifier: Identifier::Numeric(id),
        }
    }

    /// String node id.
    pub fn string(namespace: u16, id: impl Into<String>) -> Self {
        NodeId {
            namespace,
            identifier: Identifier::String(id.into()),
        }
    }

    /// Opaque node id.
    pub fn opaque(namespace: u16, id: Vec<u8>) -> Self {
        NodeId {
            namespace,
            identifier: Identifier::Opaque(id),
        }
    }

    /// True for the null id.
    pub fn is_null(&self) -> bool {
        self == &Self::NULL
    }

    /// Numeric value if this is a numeric id.
    pub fn as_numeric(&self) -> Option<u32> {
        match self.identifier {
            Identifier::Numeric(v) => Some(v),
            _ => None,
        }
    }
}

impl Default for NodeId {
    fn default() -> Self {
        Self::NULL
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.identifier {
            Identifier::Numeric(v) => write!(f, "ns={};i={}", self.namespace, v),
            Identifier::String(s) => write!(f, "ns={};s={}", self.namespace, s),
            Identifier::Guid(g) => write!(f, "ns={};g={:02x?}", self.namespace, g.0),
            Identifier::Opaque(b) => write!(f, "ns={};b={} bytes", self.namespace, b.len()),
        }
    }
}

// Encoding bytes from Part 6 §5.2.2.9.
const ENC_TWO_BYTE: u8 = 0x00;
const ENC_FOUR_BYTE: u8 = 0x01;
const ENC_NUMERIC: u8 = 0x02;
const ENC_STRING: u8 = 0x03;
const ENC_GUID: u8 = 0x04;
const ENC_BYTESTRING: u8 = 0x05;

impl UaEncode for NodeId {
    fn encode(&self, w: &mut Encoder) {
        match &self.identifier {
            Identifier::Numeric(id) => {
                if self.namespace == 0 && *id <= 0xFF {
                    w.u8(ENC_TWO_BYTE);
                    w.u8(*id as u8);
                } else if self.namespace <= 0xFF && *id <= 0xFFFF {
                    w.u8(ENC_FOUR_BYTE);
                    w.u8(self.namespace as u8);
                    w.u16(*id as u16);
                } else {
                    w.u8(ENC_NUMERIC);
                    w.u16(self.namespace);
                    w.u32(*id);
                }
            }
            Identifier::String(s) => {
                w.u8(ENC_STRING);
                w.u16(self.namespace);
                w.string(Some(s));
            }
            Identifier::Guid(g) => {
                w.u8(ENC_GUID);
                w.u16(self.namespace);
                g.encode(w);
            }
            Identifier::Opaque(b) => {
                w.u8(ENC_BYTESTRING);
                w.u16(self.namespace);
                w.byte_string(Some(b));
            }
        }
    }
}

impl UaDecode for NodeId {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let enc = r.u8()?;
        match enc & 0x3F {
            ENC_TWO_BYTE => Ok(NodeId::numeric(0, r.u8()? as u32)),
            ENC_FOUR_BYTE => {
                let ns = r.u8()? as u16;
                let id = r.u16()? as u32;
                Ok(NodeId::numeric(ns, id))
            }
            ENC_NUMERIC => {
                let ns = r.u16()?;
                let id = r.u32()?;
                Ok(NodeId::numeric(ns, id))
            }
            ENC_STRING => {
                let ns = r.u16()?;
                let s = r
                    .string()?
                    .ok_or(CodecError::Invalid("null NodeId string"))?;
                Ok(NodeId::string(ns, s))
            }
            ENC_GUID => {
                let ns = r.u16()?;
                let g = Guid::decode(r)?;
                Ok(NodeId {
                    namespace: ns,
                    identifier: Identifier::Guid(g),
                })
            }
            ENC_BYTESTRING => {
                let ns = r.u16()?;
                let b = r
                    .byte_string()?
                    .ok_or(CodecError::Invalid("null NodeId bytestring"))?;
                Ok(NodeId::opaque(ns, b))
            }
            other => Err(CodecError::InvalidDiscriminant {
                what: "NodeId encoding",
                value: other as u32,
            }),
        }
    }
}

/// A node id that may point into another server's address space.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ExpandedNodeId {
    /// The local node id part.
    pub node_id: NodeId,
    /// Optional namespace URI overriding the namespace index.
    pub namespace_uri: Option<String>,
    /// Optional server index.
    pub server_index: u32,
}

impl ExpandedNodeId {
    /// Wraps a local node id.
    pub fn local(node_id: NodeId) -> Self {
        ExpandedNodeId {
            node_id,
            namespace_uri: None,
            server_index: 0,
        }
    }
}

impl UaEncode for ExpandedNodeId {
    fn encode(&self, w: &mut Encoder) {
        // Re-encode the inner NodeId, then OR the flag bits into its
        // first (encoding) byte, as Part 6 specifies.
        let mut inner = Encoder::new();
        self.node_id.encode(&mut inner);
        let mut bytes = inner.finish();
        if self.namespace_uri.is_some() {
            bytes[0] |= 0x80;
        }
        if self.server_index != 0 {
            bytes[0] |= 0x40;
        }
        w.raw(&bytes);
        if let Some(uri) = &self.namespace_uri {
            w.string(Some(uri));
        }
        if self.server_index != 0 {
            w.u32(self.server_index);
        }
    }
}

impl UaDecode for ExpandedNodeId {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        // Peek the flags, then decode the NodeId with flags masked off.
        // Simplest correct approach: read the encoding byte, reconstruct.
        let enc = r.u8()?;
        let has_uri = enc & 0x80 != 0;
        let has_server = enc & 0x40 != 0;
        let node_id = decode_node_id_body(r, enc & 0x3F)?;
        let namespace_uri = if has_uri { r.string()? } else { None };
        let server_index = if has_server { r.u32()? } else { 0 };
        Ok(ExpandedNodeId {
            node_id,
            namespace_uri,
            server_index,
        })
    }
}

/// Decodes a NodeId body whose encoding byte was already consumed.
fn decode_node_id_body(r: &mut Decoder<'_>, enc: u8) -> Result<NodeId, CodecError> {
    match enc {
        ENC_TWO_BYTE => Ok(NodeId::numeric(0, r.u8()? as u32)),
        ENC_FOUR_BYTE => {
            let ns = r.u8()? as u16;
            Ok(NodeId::numeric(ns, r.u16()? as u32))
        }
        ENC_NUMERIC => {
            let ns = r.u16()?;
            Ok(NodeId::numeric(ns, r.u32()?))
        }
        ENC_STRING => {
            let ns = r.u16()?;
            let s = r
                .string()?
                .ok_or(CodecError::Invalid("null NodeId string"))?;
            Ok(NodeId::string(ns, s))
        }
        ENC_GUID => {
            let ns = r.u16()?;
            Ok(NodeId {
                namespace: ns,
                identifier: Identifier::Guid(Guid::decode(r)?),
            })
        }
        ENC_BYTESTRING => {
            let ns = r.u16()?;
            let b = r
                .byte_string()?
                .ok_or(CodecError::Invalid("null NodeId bytestring"))?;
            Ok(NodeId::opaque(ns, b))
        }
        other => Err(CodecError::InvalidDiscriminant {
            what: "NodeId encoding",
            value: other as u32,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(id: &NodeId) -> NodeId {
        NodeId::decode_all(&id.encode_to_vec()).unwrap()
    }

    #[test]
    fn two_byte_encoding() {
        let id = NodeId::numeric(0, 84); // Objects folder
        let bytes = id.encode_to_vec();
        assert_eq!(bytes, vec![0x00, 84]);
        assert_eq!(roundtrip(&id), id);
    }

    #[test]
    fn four_byte_encoding() {
        let id = NodeId::numeric(2, 1234);
        let bytes = id.encode_to_vec();
        assert_eq!(bytes[0], 0x01);
        assert_eq!(bytes.len(), 4);
        assert_eq!(roundtrip(&id), id);
    }

    #[test]
    fn full_numeric_encoding() {
        let id = NodeId::numeric(300, 1_000_000);
        let bytes = id.encode_to_vec();
        assert_eq!(bytes[0], 0x02);
        assert_eq!(roundtrip(&id), id);
    }

    #[test]
    fn string_guid_opaque_roundtrip() {
        for id in [
            NodeId::string(3, "rSetFillLevel"),
            NodeId {
                namespace: 1,
                identifier: Identifier::Guid(Guid::from_bytes([9; 16])),
            },
            NodeId::opaque(4, vec![1, 2, 3, 4]),
        ] {
            assert_eq!(roundtrip(&id), id);
        }
    }

    #[test]
    fn null_and_display() {
        assert!(NodeId::NULL.is_null());
        assert!(!NodeId::numeric(0, 1).is_null());
        assert_eq!(format!("{}", NodeId::numeric(2, 5)), "ns=2;i=5");
        assert_eq!(format!("{}", NodeId::string(1, "x")), "ns=1;s=x");
    }

    #[test]
    fn as_numeric() {
        assert_eq!(NodeId::numeric(0, 7).as_numeric(), Some(7));
        assert_eq!(NodeId::string(0, "x").as_numeric(), None);
    }

    #[test]
    fn invalid_encoding_byte_rejected() {
        assert!(NodeId::decode_all(&[0x3F, 0, 0]).is_err());
    }

    #[test]
    fn expanded_local_roundtrip() {
        let e = ExpandedNodeId::local(NodeId::numeric(1, 99));
        let bytes = e.encode_to_vec();
        assert_eq!(ExpandedNodeId::decode_all(&bytes).unwrap(), e);
    }

    #[test]
    fn expanded_with_uri_and_server() {
        let e = ExpandedNodeId {
            node_id: NodeId::string(0, "n"),
            namespace_uri: Some("urn:factory:plc".into()),
            server_index: 3,
        };
        let bytes = e.encode_to_vec();
        assert_eq!(bytes[0] & 0xC0, 0xC0);
        assert_eq!(ExpandedNodeId::decode_all(&bytes).unwrap(), e);
    }
}
