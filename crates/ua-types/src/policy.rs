//! Security modes, security policies (Table 1 of the paper), and user
//! token types — the configuration surface the study assesses.

use crate::encoding::{CodecError, Decoder, Encoder, UaDecode, UaEncode};

/// Message security mode (Part 4): whether messages are signed and/or
/// encrypted on the secure channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MessageSecurityMode {
    /// Invalid/unspecified (wire value 0).
    Invalid,
    /// No signing, no encryption — the paper found 26 % of servers
    /// offering *only* this.
    None,
    /// Messages are signed (authenticity/integrity) but not encrypted.
    Sign,
    /// Messages are signed and encrypted.
    SignAndEncrypt,
}

impl MessageSecurityMode {
    /// All meaningful modes, ordered by increasing strength.
    pub const ALL: [MessageSecurityMode; 3] = [
        MessageSecurityMode::None,
        MessageSecurityMode::Sign,
        MessageSecurityMode::SignAndEncrypt,
    ];

    /// Strength rank for the least/most-secure analysis of Figure 3
    /// (`None` < `Sign` < `SignAndEncrypt`).
    pub fn strength(self) -> u8 {
        match self {
            MessageSecurityMode::Invalid => 0,
            MessageSecurityMode::None => 1,
            MessageSecurityMode::Sign => 2,
            MessageSecurityMode::SignAndEncrypt => 3,
        }
    }

    /// True if the mode provides authenticated communication (the
    /// official recommendation's minimum bar).
    pub fn is_secure(self) -> bool {
        matches!(
            self,
            MessageSecurityMode::Sign | MessageSecurityMode::SignAndEncrypt
        )
    }

    /// Abbreviation used in the paper's figures (N / S / S&E).
    pub fn abbrev(self) -> &'static str {
        match self {
            MessageSecurityMode::Invalid => "?",
            MessageSecurityMode::None => "N",
            MessageSecurityMode::Sign => "S",
            MessageSecurityMode::SignAndEncrypt => "S&E",
        }
    }

    fn wire(self) -> u32 {
        match self {
            MessageSecurityMode::Invalid => 0,
            MessageSecurityMode::None => 1,
            MessageSecurityMode::Sign => 2,
            MessageSecurityMode::SignAndEncrypt => 3,
        }
    }
}

impl UaEncode for MessageSecurityMode {
    fn encode(&self, w: &mut Encoder) {
        w.u32(self.wire());
    }
}

impl UaDecode for MessageSecurityMode {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match r.u32()? {
            0 => Ok(MessageSecurityMode::Invalid),
            1 => Ok(MessageSecurityMode::None),
            2 => Ok(MessageSecurityMode::Sign),
            3 => Ok(MessageSecurityMode::SignAndEncrypt),
            other => Err(CodecError::InvalidDiscriminant {
                what: "MessageSecurityMode",
                value: other,
            }),
        }
    }
}

impl std::fmt::Display for MessageSecurityMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Classification of a policy in the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyClass {
    /// Provides no security (None).
    Insecure,
    /// Deprecated since 2017 due to SHA-1 (D1, D2).
    Deprecated,
    /// Considered secure at the time of the study (S1, S2, S3).
    Secure,
}

/// The six standardized security policies (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SecurityPolicy {
    /// `None` — no cryptography at all (class N).
    None,
    /// `Basic128Rsa15` — SHA-1, keys 1024–2048 bit; deprecated (D1).
    Basic128Rsa15,
    /// `Basic256` — SHA-1, keys 1024–2048 bit; deprecated (D2).
    Basic256,
    /// `Aes128_Sha256_RsaOaep` — SHA-256, keys 2048–4096 bit (S1).
    Aes128Sha256RsaOaep,
    /// `Basic256Sha256` — SHA-256, keys 2048–4096 bit; the recommended
    /// baseline (S2).
    Basic256Sha256,
    /// `Aes256_Sha256_RsaPss` — SHA-256, keys 2048–4096 bit (S3).
    Aes256Sha256RsaPss,
}

/// Hash algorithms referenced by policy metadata. Mirrors
/// `ua_crypto::HashAlgorithm` without creating a dependency cycle;
/// conversion lives in `ua-proto`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PolicyHash {
    /// MD5 (never specified by any policy; appears only in rogue certs).
    Md5,
    /// SHA-1.
    Sha1,
    /// SHA-256.
    Sha256,
}

impl SecurityPolicy {
    /// All policies in the strength order the paper uses
    /// (N < D1 < D2 < S1 < S2 < S3).
    pub const ALL: [SecurityPolicy; 6] = [
        SecurityPolicy::None,
        SecurityPolicy::Basic128Rsa15,
        SecurityPolicy::Basic256,
        SecurityPolicy::Aes128Sha256RsaOaep,
        SecurityPolicy::Basic256Sha256,
        SecurityPolicy::Aes256Sha256RsaPss,
    ];

    /// The policy URI as transmitted in endpoint descriptions.
    pub fn uri(self) -> &'static str {
        match self {
            SecurityPolicy::None => "http://opcfoundation.org/UA/SecurityPolicy#None",
            SecurityPolicy::Basic128Rsa15 => {
                "http://opcfoundation.org/UA/SecurityPolicy#Basic128Rsa15"
            }
            SecurityPolicy::Basic256 => "http://opcfoundation.org/UA/SecurityPolicy#Basic256",
            SecurityPolicy::Aes128Sha256RsaOaep => {
                "http://opcfoundation.org/UA/SecurityPolicy#Aes128_Sha256_RsaOaep"
            }
            SecurityPolicy::Basic256Sha256 => {
                "http://opcfoundation.org/UA/SecurityPolicy#Basic256Sha256"
            }
            SecurityPolicy::Aes256Sha256RsaPss => {
                "http://opcfoundation.org/UA/SecurityPolicy#Aes256_Sha256_RsaPss"
            }
        }
    }

    /// Parses a policy URI.
    pub fn from_uri(uri: &str) -> Option<Self> {
        SecurityPolicy::ALL.into_iter().find(|p| p.uri() == uri)
    }

    /// The paper's abbreviation (N, D1, D2, S1, S2, S3).
    pub fn abbrev(self) -> &'static str {
        match self {
            SecurityPolicy::None => "N",
            SecurityPolicy::Basic128Rsa15 => "D1",
            SecurityPolicy::Basic256 => "D2",
            SecurityPolicy::Aes128Sha256RsaOaep => "S1",
            SecurityPolicy::Basic256Sha256 => "S2",
            SecurityPolicy::Aes256Sha256RsaPss => "S3",
        }
    }

    /// Strength rank used for least/most-secure comparisons (Figure 3).
    pub fn strength(self) -> u8 {
        match self {
            SecurityPolicy::None => 0,
            SecurityPolicy::Basic128Rsa15 => 1,
            SecurityPolicy::Basic256 => 2,
            SecurityPolicy::Aes128Sha256RsaOaep => 3,
            SecurityPolicy::Basic256Sha256 => 4,
            SecurityPolicy::Aes256Sha256RsaPss => 5,
        }
    }

    /// Table 1 classification.
    pub fn class(self) -> PolicyClass {
        match self {
            SecurityPolicy::None => PolicyClass::Insecure,
            SecurityPolicy::Basic128Rsa15 | SecurityPolicy::Basic256 => PolicyClass::Deprecated,
            _ => PolicyClass::Secure,
        }
    }

    /// Signature hash function mandated by the policy (Table 1 column
    /// "Sig. Hash"); `None` policy has none.
    pub fn signature_hash(self) -> Option<PolicyHash> {
        match self {
            SecurityPolicy::None => None,
            SecurityPolicy::Basic128Rsa15 | SecurityPolicy::Basic256 => Some(PolicyHash::Sha1),
            _ => Some(PolicyHash::Sha256),
        }
    }

    /// Hash functions the policy permits for *certificate* signatures
    /// (Table 1 column "Cert. Hash").
    pub fn allowed_certificate_hashes(self) -> &'static [PolicyHash] {
        match self {
            SecurityPolicy::None => &[],
            SecurityPolicy::Basic128Rsa15 => &[PolicyHash::Sha1],
            SecurityPolicy::Basic256 => &[PolicyHash::Sha1, PolicyHash::Sha256],
            _ => &[PolicyHash::Sha256],
        }
    }

    /// Permitted certificate key lengths in bits, inclusive (Table 1
    /// column "Key Len."); `None` policy has no requirement.
    pub fn key_length_range(self) -> Option<(u32, u32)> {
        match self {
            SecurityPolicy::None => None,
            SecurityPolicy::Basic128Rsa15 | SecurityPolicy::Basic256 => Some((1024, 2048)),
            _ => Some((2048, 4096)),
        }
    }

    /// True for policies the recommendations allow (S1, S2, S3).
    pub fn is_recommended(self) -> bool {
        self.class() == PolicyClass::Secure
    }
}

impl std::fmt::Display for SecurityPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.abbrev())
    }
}

/// User identity token types (Part 4 §7.36).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UserTokenType {
    /// Anonymous — no credentials at all. The recommendations say this
    /// must be disabled; §5.4 found it on 50 % of servers.
    Anonymous,
    /// Username/password.
    UserName,
    /// X.509 client certificate.
    Certificate,
    /// Token issued by an external authority (e.g. OAuth2/Kerberos).
    IssuedToken,
}

impl UserTokenType {
    /// All token types in the column order of the paper's Table 2
    /// (anon., cred., cert., token).
    pub const ALL: [UserTokenType; 4] = [
        UserTokenType::Anonymous,
        UserTokenType::UserName,
        UserTokenType::Certificate,
        UserTokenType::IssuedToken,
    ];

    /// Label used in Table 2.
    pub fn label(self) -> &'static str {
        match self {
            UserTokenType::Anonymous => "anon.",
            UserTokenType::UserName => "cred.",
            UserTokenType::Certificate => "cert.",
            UserTokenType::IssuedToken => "token",
        }
    }

    fn wire(self) -> u32 {
        match self {
            UserTokenType::Anonymous => 0,
            UserTokenType::UserName => 1,
            UserTokenType::Certificate => 2,
            UserTokenType::IssuedToken => 3,
        }
    }
}

impl UaEncode for UserTokenType {
    fn encode(&self, w: &mut Encoder) {
        w.u32(self.wire());
    }
}

impl UaDecode for UserTokenType {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match r.u32()? {
            0 => Ok(UserTokenType::Anonymous),
            1 => Ok(UserTokenType::UserName),
            2 => Ok(UserTokenType::Certificate),
            3 => Ok(UserTokenType::IssuedToken),
            other => Err(CodecError::InvalidDiscriminant {
                what: "UserTokenType",
                value: other,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_strength_ordering() {
        assert!(MessageSecurityMode::None.strength() < MessageSecurityMode::Sign.strength());
        assert!(
            MessageSecurityMode::Sign.strength() < MessageSecurityMode::SignAndEncrypt.strength()
        );
        assert!(!MessageSecurityMode::None.is_secure());
        assert!(MessageSecurityMode::Sign.is_secure());
        assert!(MessageSecurityMode::SignAndEncrypt.is_secure());
    }

    #[test]
    fn mode_wire_roundtrip() {
        for mode in [
            MessageSecurityMode::Invalid,
            MessageSecurityMode::None,
            MessageSecurityMode::Sign,
            MessageSecurityMode::SignAndEncrypt,
        ] {
            let bytes = mode.encode_to_vec();
            assert_eq!(MessageSecurityMode::decode_all(&bytes).unwrap(), mode);
        }
        assert!(MessageSecurityMode::decode_all(&9u32.to_le_bytes()).is_err());
    }

    #[test]
    fn policy_table1_metadata() {
        use SecurityPolicy as P;
        // Classes per Table 1.
        assert_eq!(P::None.class(), PolicyClass::Insecure);
        assert_eq!(P::Basic128Rsa15.class(), PolicyClass::Deprecated);
        assert_eq!(P::Basic256.class(), PolicyClass::Deprecated);
        for p in [
            P::Aes128Sha256RsaOaep,
            P::Basic256Sha256,
            P::Aes256Sha256RsaPss,
        ] {
            assert_eq!(p.class(), PolicyClass::Secure);
            assert!(p.is_recommended());
            assert_eq!(p.signature_hash(), Some(PolicyHash::Sha256));
            assert_eq!(p.key_length_range(), Some((2048, 4096)));
        }
        // Deprecated policies use SHA-1 and short keys.
        assert_eq!(P::Basic128Rsa15.signature_hash(), Some(PolicyHash::Sha1));
        assert_eq!(P::Basic128Rsa15.key_length_range(), Some((1024, 2048)));
        // Basic256 allows SHA-256 certificates too (Table 1 "SHA1, SHA256").
        assert_eq!(
            P::Basic256.allowed_certificate_hashes(),
            &[PolicyHash::Sha1, PolicyHash::Sha256]
        );
        assert_eq!(
            P::Basic128Rsa15.allowed_certificate_hashes(),
            &[PolicyHash::Sha1]
        );
        // None has no crypto.
        assert_eq!(P::None.signature_hash(), None);
        assert_eq!(P::None.key_length_range(), None);
        assert!(P::None.allowed_certificate_hashes().is_empty());
    }

    #[test]
    fn policy_abbreviations_match_paper() {
        let abbrevs: Vec<&str> = SecurityPolicy::ALL.iter().map(|p| p.abbrev()).collect();
        assert_eq!(abbrevs, vec!["N", "D1", "D2", "S1", "S2", "S3"]);
    }

    #[test]
    fn policy_uri_roundtrip() {
        for p in SecurityPolicy::ALL {
            assert_eq!(SecurityPolicy::from_uri(p.uri()), Some(p));
        }
        assert_eq!(SecurityPolicy::from_uri("http://bogus"), None);
        assert!(SecurityPolicy::Basic256Sha256
            .uri()
            .ends_with("#Basic256Sha256"));
    }

    #[test]
    fn policy_strength_is_total_order() {
        let mut last = None;
        for p in SecurityPolicy::ALL {
            if let Some(prev) = last {
                assert!(p.strength() > prev, "{p:?}");
            }
            last = Some(p.strength());
        }
    }

    #[test]
    fn token_type_roundtrip_and_labels() {
        for t in UserTokenType::ALL {
            let bytes = t.encode_to_vec();
            assert_eq!(UserTokenType::decode_all(&bytes).unwrap(), t);
        }
        assert_eq!(UserTokenType::Anonymous.label(), "anon.");
        assert_eq!(UserTokenType::UserName.label(), "cred.");
        assert!(UserTokenType::decode_all(&7u32.to_le_bytes()).is_err());
    }
}
