//! Node classes, attribute ids, and access-level bit masks — the
//! vocabulary of the address-space access-control analysis (§5.4).

use crate::encoding::{CodecError, Decoder, Encoder, UaDecode, UaEncode};

/// Node classes (Part 3 §5.9). Only the classes the study's address
/// spaces contain are modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeClass {
    /// Folder/device objects.
    Object,
    /// Variables — readable/writable data points such as
    /// `m3InflowPerHour`.
    Variable,
    /// Methods — callable functions such as `AddEndpoint`.
    Method,
    /// Views (present in the standard namespace).
    View,
}

impl NodeClass {
    fn wire(self) -> u32 {
        match self {
            NodeClass::Object => 1,
            NodeClass::Variable => 2,
            NodeClass::Method => 4,
            NodeClass::View => 128,
        }
    }
}

impl UaEncode for NodeClass {
    fn encode(&self, w: &mut Encoder) {
        w.u32(self.wire());
    }
}

impl UaDecode for NodeClass {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match r.u32()? {
            1 => Ok(NodeClass::Object),
            2 => Ok(NodeClass::Variable),
            4 => Ok(NodeClass::Method),
            128 => Ok(NodeClass::View),
            other => Err(CodecError::InvalidDiscriminant {
                what: "NodeClass",
                value: other,
            }),
        }
    }
}

/// The AccessLevel bit mask of variable nodes (Part 3 §8.57).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AccessLevel(pub u8);

impl AccessLevel {
    /// CurrentRead bit.
    pub const CURRENT_READ: AccessLevel = AccessLevel(0x01);
    /// CurrentWrite bit.
    pub const CURRENT_WRITE: AccessLevel = AccessLevel(0x02);
    /// Read and write.
    pub const READ_WRITE: AccessLevel = AccessLevel(0x03);
    /// No access.
    pub const NONE: AccessLevel = AccessLevel(0x00);

    /// True if the read bit is set.
    pub fn readable(self) -> bool {
        self.0 & Self::CURRENT_READ.0 != 0
    }

    /// True if the write bit is set.
    pub fn writable(self) -> bool {
        self.0 & Self::CURRENT_WRITE.0 != 0
    }

    /// Union of two masks.
    pub fn union(self, other: AccessLevel) -> AccessLevel {
        AccessLevel(self.0 | other.0)
    }

    /// Intersection of two masks (effective rights = node rights ∩ user
    /// rights).
    pub fn intersect(self, other: AccessLevel) -> AccessLevel {
        AccessLevel(self.0 & other.0)
    }
}

impl UaEncode for AccessLevel {
    fn encode(&self, w: &mut Encoder) {
        w.u8(self.0);
    }
}

impl UaDecode for AccessLevel {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(AccessLevel(r.u8()?))
    }
}

/// Attribute ids for the Read service (Part 4 §5.10.2, Part 6 Annex A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributeId {
    /// NodeId (1).
    NodeId,
    /// NodeClass (2).
    NodeClass,
    /// BrowseName (3).
    BrowseName,
    /// DisplayName (4).
    DisplayName,
    /// Value (13).
    Value,
    /// AccessLevel (17).
    AccessLevel,
    /// UserAccessLevel (18) — effective rights of the *current* user;
    /// the scanner reads this to build Figure 7.
    UserAccessLevel,
    /// Executable (60).
    Executable,
    /// UserExecutable (61).
    UserExecutable,
}

impl AttributeId {
    /// The wire id.
    pub fn id(self) -> u32 {
        match self {
            AttributeId::NodeId => 1,
            AttributeId::NodeClass => 2,
            AttributeId::BrowseName => 3,
            AttributeId::DisplayName => 4,
            AttributeId::Value => 13,
            AttributeId::AccessLevel => 17,
            AttributeId::UserAccessLevel => 18,
            AttributeId::Executable => 60,
            AttributeId::UserExecutable => 61,
        }
    }

    /// Parses a wire id.
    pub fn from_id(id: u32) -> Option<Self> {
        Some(match id {
            1 => AttributeId::NodeId,
            2 => AttributeId::NodeClass,
            3 => AttributeId::BrowseName,
            4 => AttributeId::DisplayName,
            13 => AttributeId::Value,
            17 => AttributeId::AccessLevel,
            18 => AttributeId::UserAccessLevel,
            60 => AttributeId::Executable,
            61 => AttributeId::UserExecutable,
            _ => return None,
        })
    }
}

impl UaEncode for AttributeId {
    fn encode(&self, w: &mut Encoder) {
        w.u32(self.id());
    }
}

impl UaDecode for AttributeId {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let id = r.u32()?;
        AttributeId::from_id(id).ok_or(CodecError::InvalidDiscriminant {
            what: "AttributeId",
            value: id,
        })
    }
}

/// Browse direction for the Browse service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BrowseDirection {
    /// Follow references forward (the traversal direction the scanner
    /// uses).
    Forward,
    /// Follow inverse references.
    Inverse,
    /// Both directions.
    Both,
}

impl UaEncode for BrowseDirection {
    fn encode(&self, w: &mut Encoder) {
        w.u32(match self {
            BrowseDirection::Forward => 0,
            BrowseDirection::Inverse => 1,
            BrowseDirection::Both => 2,
        });
    }
}

impl UaDecode for BrowseDirection {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match r.u32()? {
            0 => Ok(BrowseDirection::Forward),
            1 => Ok(BrowseDirection::Inverse),
            2 => Ok(BrowseDirection::Both),
            other => Err(CodecError::InvalidDiscriminant {
                what: "BrowseDirection",
                value: other,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_level_bits() {
        assert!(AccessLevel::CURRENT_READ.readable());
        assert!(!AccessLevel::CURRENT_READ.writable());
        assert!(AccessLevel::READ_WRITE.readable() && AccessLevel::READ_WRITE.writable());
        assert!(!AccessLevel::NONE.readable());
        let u = AccessLevel::CURRENT_READ.union(AccessLevel::CURRENT_WRITE);
        assert_eq!(u, AccessLevel::READ_WRITE);
        let i = AccessLevel::READ_WRITE.intersect(AccessLevel::CURRENT_READ);
        assert_eq!(i, AccessLevel::CURRENT_READ);
    }

    #[test]
    fn node_class_roundtrip() {
        for nc in [
            NodeClass::Object,
            NodeClass::Variable,
            NodeClass::Method,
            NodeClass::View,
        ] {
            let bytes = nc.encode_to_vec();
            assert_eq!(NodeClass::decode_all(&bytes).unwrap(), nc);
        }
        assert!(NodeClass::decode_all(&3u32.to_le_bytes()).is_err());
    }

    #[test]
    fn attribute_id_roundtrip() {
        for a in [
            AttributeId::NodeId,
            AttributeId::Value,
            AttributeId::UserAccessLevel,
            AttributeId::UserExecutable,
        ] {
            assert_eq!(AttributeId::from_id(a.id()), Some(a));
            let bytes = a.encode_to_vec();
            assert_eq!(AttributeId::decode_all(&bytes).unwrap(), a);
        }
        assert_eq!(AttributeId::from_id(999), None);
    }

    #[test]
    fn browse_direction_roundtrip() {
        for d in [
            BrowseDirection::Forward,
            BrowseDirection::Inverse,
            BrowseDirection::Both,
        ] {
            let bytes = d.encode_to_vec();
            assert_eq!(BrowseDirection::decode_all(&bytes).unwrap(), d);
        }
        assert!(BrowseDirection::decode_all(&5u32.to_le_bytes()).is_err());
    }
}
