//! Scalar built-in types: `Guid`, `DateTime`, `StatusCode`,
//! `QualifiedName`, `LocalizedText`.

use crate::encoding::{CodecError, Decoder, Encoder, UaDecode, UaEncode};

/// Seconds between 1601-01-01 (OPC UA epoch) and 1970-01-01 (unix epoch).
pub const UNIX_EPOCH_OFFSET_SECONDS: i64 = 11_644_473_600;

/// A 16-byte globally unique identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Guid(pub [u8; 16]);

impl Guid {
    /// Builds a GUID from raw bytes.
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        Guid(bytes)
    }
}

impl UaEncode for Guid {
    fn encode(&self, w: &mut Encoder) {
        w.raw(&self.0);
    }
}

impl UaDecode for Guid {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let raw = r.raw(16)?;
        let mut b = [0u8; 16];
        b.copy_from_slice(raw);
        Ok(Guid(b))
    }
}

/// OPC UA DateTime: 100-nanosecond ticks since 1601-01-01 00:00 UTC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct UaDateTime(pub i64);

impl UaDateTime {
    /// The null timestamp.
    pub const NULL: UaDateTime = UaDateTime(0);

    /// Converts unix seconds to OPC UA ticks.
    pub fn from_unix_seconds(s: i64) -> Self {
        UaDateTime((s + UNIX_EPOCH_OFFSET_SECONDS) * 10_000_000)
    }

    /// Converts to unix seconds (truncating sub-second precision).
    pub fn to_unix_seconds(self) -> i64 {
        self.0 / 10_000_000 - UNIX_EPOCH_OFFSET_SECONDS
    }

    /// Converts unix milliseconds to OPC UA ticks.
    pub fn from_unix_millis(ms: i64) -> Self {
        UaDateTime(ms * 10_000 + UNIX_EPOCH_OFFSET_SECONDS * 10_000_000)
    }
}

impl UaEncode for UaDateTime {
    fn encode(&self, w: &mut Encoder) {
        w.i64(self.0);
    }
}

impl UaDecode for UaDateTime {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(UaDateTime(r.i64()?))
    }
}

/// An OPC UA status code (Part 4). Bit 31 set = Bad, bit 30 = Uncertain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct StatusCode(pub u32);

macro_rules! status_codes {
    ($($(#[$doc:meta])* $name:ident = $value:expr;)*) => {
        impl StatusCode {
            $( $(#[$doc])* pub const $name: StatusCode = StatusCode($value); )*

            /// Symbolic name if known.
            pub fn name(self) -> &'static str {
                match self.0 {
                    $( $value => stringify!($name), )*
                    _ => "Unknown",
                }
            }
        }
    };
}

status_codes! {
    /// The operation succeeded.
    GOOD = 0x0000_0000;
    /// An unexpected error occurred.
    BAD_UNEXPECTED_ERROR = 0x8001_0000;
    /// An internal error occurred.
    BAD_INTERNAL_ERROR = 0x8002_0000;
    /// A low-level communication error occurred.
    BAD_COMMUNICATION_ERROR = 0x8005_0000;
    /// Encoding halted because of an invalid value.
    BAD_ENCODING_ERROR = 0x8006_0000;
    /// Decoding halted because the data is malformed.
    BAD_DECODING_ERROR = 0x8007_0000;
    /// The operation timed out.
    BAD_TIMEOUT = 0x800A_0000;
    /// The server does not support the requested service.
    BAD_SERVICE_UNSUPPORTED = 0x800B_0000;
    /// The certificate provided is invalid.
    BAD_CERTIFICATE_INVALID = 0x8012_0000;
    /// An error occurred verifying security.
    BAD_SECURITY_CHECKS_FAILED = 0x8013_0000;
    /// The certificate's validity window is violated.
    BAD_CERTIFICATE_TIME_INVALID = 0x8014_0000;
    /// The URI in the certificate does not match the application.
    BAD_CERTIFICATE_URI_INVALID = 0x8017_0000;
    /// The certificate is not trusted — the ambiguous rejection the paper
    /// observed when servers refuse the scanner's self-signed certificate.
    BAD_CERTIFICATE_UNTRUSTED = 0x801A_0000;
    /// The user does not have permission for the operation.
    BAD_USER_ACCESS_DENIED = 0x801F_0000;
    /// The identity token is not valid.
    BAD_IDENTITY_TOKEN_INVALID = 0x8020_0000;
    /// The identity token was rejected (wrong credentials or anonymous
    /// access disabled).
    BAD_IDENTITY_TOKEN_REJECTED = 0x8021_0000;
    /// The secure channel id is not valid.
    BAD_SECURE_CHANNEL_ID_INVALID = 0x8022_0000;
    /// The session id is not valid.
    BAD_SESSION_ID_INVALID = 0x8025_0000;
    /// The session was closed by the client.
    BAD_SESSION_CLOSED = 0x8026_0000;
    /// The session cannot be used because activation failed or is pending.
    BAD_SESSION_NOT_ACTIVATED = 0x8027_0000;
    /// The security mode does not meet the requirements.
    BAD_SECURITY_MODE_REJECTED = 0x8029_0000;
    /// The security policy does not meet the requirements.
    BAD_SECURITY_POLICY_REJECTED = 0x802A_0000;
    /// Too many sessions are open.
    BAD_TOO_MANY_SESSIONS = 0x802B_0000;
    /// The nonce is invalid (wrong length or reused).
    BAD_NONCE_INVALID = 0x8024_0000;
    /// The node id is unknown.
    BAD_NODE_ID_UNKNOWN = 0x8034_0000;
    /// The attribute is not supported for the node.
    BAD_ATTRIBUTE_ID_INVALID = 0x8035_0000;
    /// The node is not readable (by this user).
    BAD_NOT_READABLE = 0x803A_0000;
    /// The node is not writable (by this user).
    BAD_NOT_WRITABLE = 0x803B_0000;
    /// The continuation point is no longer valid.
    BAD_CONTINUATION_POINT_INVALID = 0x804A_0000;
    /// The request type is not valid for this endpoint.
    BAD_REQUEST_TYPE_INVALID = 0x8053_0000;
    /// The method id is not valid or not a method.
    BAD_METHOD_INVALID = 0x8075_0000;
    /// The executable attribute does not allow execution (by this user).
    BAD_NOT_EXECUTABLE = 0x8111_0000;
    /// The TCP message type is invalid.
    BAD_TCP_MESSAGE_TYPE_INVALID = 0x807E_0000;
    /// The endpoint URL is invalid or unreachable.
    BAD_TCP_ENDPOINT_URL_INVALID = 0x8083_0000;
    /// The message size exceeds the negotiated limit.
    BAD_TCP_MESSAGE_TOO_LARGE = 0x8080_0000;
    /// Internal TCP-layer error.
    BAD_TCP_INTERNAL_ERROR = 0x8082_0000;
}

impl StatusCode {
    /// True if the severity is Good.
    pub fn is_good(self) -> bool {
        self.0 & 0xC000_0000 == 0
    }

    /// True if the severity is Bad.
    pub fn is_bad(self) -> bool {
        self.0 & 0x8000_0000 != 0
    }
}

impl std::fmt::Display for StatusCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (0x{:08X})", self.name(), self.0)
    }
}

impl UaEncode for StatusCode {
    fn encode(&self, w: &mut Encoder) {
        w.u32(self.0);
    }
}

impl UaDecode for StatusCode {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(StatusCode(r.u32()?))
    }
}

/// A name qualified by a namespace index (browse names).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct QualifiedName {
    /// Index into the server's namespace array.
    pub namespace_index: u16,
    /// The name.
    pub name: Option<String>,
}

impl QualifiedName {
    /// Builds a qualified name.
    pub fn new(namespace_index: u16, name: impl Into<String>) -> Self {
        QualifiedName {
            namespace_index,
            name: Some(name.into()),
        }
    }
}

impl UaEncode for QualifiedName {
    fn encode(&self, w: &mut Encoder) {
        w.u16(self.namespace_index);
        w.string(self.name.as_deref());
    }
}

impl UaDecode for QualifiedName {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(QualifiedName {
            namespace_index: r.u16()?,
            name: r.string()?,
        })
    }
}

/// Human-readable text with an optional locale.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LocalizedText {
    /// Locale id, e.g. `en-US`.
    pub locale: Option<String>,
    /// The text.
    pub text: Option<String>,
}

impl LocalizedText {
    /// Builds text without a locale.
    pub fn new(text: impl Into<String>) -> Self {
        LocalizedText {
            locale: None,
            text: Some(text.into()),
        }
    }
}

impl UaEncode for LocalizedText {
    fn encode(&self, w: &mut Encoder) {
        let mask = (self.locale.is_some() as u8) | ((self.text.is_some() as u8) << 1);
        w.u8(mask);
        if let Some(l) = &self.locale {
            w.string(Some(l));
        }
        if let Some(t) = &self.text {
            w.string(Some(t));
        }
    }
}

impl UaDecode for LocalizedText {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let mask = r.u8()?;
        if mask & !0x03 != 0 {
            return Err(CodecError::InvalidDiscriminant {
                what: "LocalizedText mask",
                value: mask as u32,
            });
        }
        let locale = if mask & 0x01 != 0 { r.string()? } else { None };
        let text = if mask & 0x02 != 0 { r.string()? } else { None };
        Ok(LocalizedText { locale, text })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datetime_unix_roundtrip() {
        // 2020-08-30 00:00:00 UTC
        let unix = 1_598_745_600i64;
        let dt = UaDateTime::from_unix_seconds(unix);
        assert_eq!(dt.to_unix_seconds(), unix);
        // Epoch relationships.
        assert_eq!(
            UaDateTime::from_unix_seconds(0).0,
            UNIX_EPOCH_OFFSET_SECONDS * 10_000_000
        );
        assert_eq!(
            UaDateTime::NULL.to_unix_seconds(),
            -UNIX_EPOCH_OFFSET_SECONDS
        );
    }

    #[test]
    fn datetime_millis() {
        let dt = UaDateTime::from_unix_millis(1500);
        assert_eq!(dt.to_unix_seconds(), 1);
    }

    #[test]
    fn status_code_severity() {
        assert!(StatusCode::GOOD.is_good());
        assert!(!StatusCode::GOOD.is_bad());
        assert!(StatusCode::BAD_TIMEOUT.is_bad());
        assert!(!StatusCode::BAD_TIMEOUT.is_good());
    }

    #[test]
    fn status_code_names() {
        assert_eq!(StatusCode::GOOD.name(), "GOOD");
        assert_eq!(
            StatusCode::BAD_IDENTITY_TOKEN_REJECTED.name(),
            "BAD_IDENTITY_TOKEN_REJECTED"
        );
        assert_eq!(StatusCode(0x1234_5678).name(), "Unknown");
        assert!(format!("{}", StatusCode::GOOD).contains("GOOD"));
    }

    #[test]
    fn qualified_name_roundtrip() {
        let qn = QualifiedName::new(2, "m3InflowPerHour");
        let bytes = qn.encode_to_vec();
        assert_eq!(QualifiedName::decode_all(&bytes).unwrap(), qn);
    }

    #[test]
    fn localized_text_roundtrip_all_masks() {
        for lt in [
            LocalizedText::default(),
            LocalizedText::new("hello"),
            LocalizedText {
                locale: Some("en".into()),
                text: None,
            },
            LocalizedText {
                locale: Some("de".into()),
                text: Some("Füllstand".into()),
            },
        ] {
            let bytes = lt.encode_to_vec();
            assert_eq!(LocalizedText::decode_all(&bytes).unwrap(), lt);
        }
    }

    #[test]
    fn localized_text_bad_mask_rejected() {
        let mut w = Encoder::new();
        w.u8(0xFF);
        let bytes = w.finish();
        assert!(LocalizedText::decode_all(&bytes).is_err());
    }

    #[test]
    fn guid_roundtrip() {
        let g = Guid::from_bytes([7; 16]);
        let bytes = g.encode_to_vec();
        assert_eq!(Guid::decode_all(&bytes).unwrap(), g);
    }
}
