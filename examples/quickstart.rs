//! Quickstart: deploy a handful of OPC UA servers, scan them, assess
//! their security configuration.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use opcua_study::prelude::*;

fn main() {
    // A deterministic, in-memory Internet starting at the paper's first
    // measurement date (2020-02-09).
    let net = Internet::new(VirtualClock::default());
    let universe: Cidr = "198.51.100.0/24".parse().unwrap();

    // A tiny population: a few hosts per interesting stratum.
    let mix = StrataMix::new()
        .with(HostClass::WideOpen, 3)
        .with(HostClass::DeprecatedOnly, 2)
        .with(HostClass::MixedLegacy, 2)
        .with(HostClass::SecureModern, 2)
        .with(HostClass::ExpiredCert, 1)
        .with(HostClass::ReusedCert, 2)
        .with(HostClass::DiscoveryServer, 2);
    let population = synthesize(&net, &PopulationConfig::new(7, vec![universe], mix));
    println!("deployed {} hosts into {universe}", population.len());

    // Scan: SYN sweep → UACP hello → GetEndpoints → anonymous session →
    // budgeted traversal. Records arrive as each host finishes.
    let scanner = Scanner::new(net.clone(), Blocklist::new(), ScanConfig::default());
    let (summary, records) = scanner.scan_collect(&[universe], 7);
    println!(
        "sweep: {} probes, {} OPC UA hosts, finished at virtual t+{}s",
        summary.sweep.probes_sent,
        summary.opcua_hosts,
        summary.finished_unix - summary.started_unix,
    );

    // Assess against the paper's rules and print the summary tables.
    let report = assess(&records);
    println!("\n{report}");
}
