//! Certificate-hygiene walkthrough on the real pipeline (§5.2–§5.3):
//! a population heavy on certificate deficits — expired validity
//! windows, keys/hashes too weak for the advertised policy, one
//! certificate deployed across many hosts, and RSA keys sharing a prime
//! factor — is deployed, scanned (including LDS referral following),
//! and assessed, then each finding is cross-checked against the
//! deployment ground truth.
//!
//! Deterministic: the same seed prints the same numbers.
//!
//! ```sh
//! cargo run --release --example cert_hygiene            # default seed
//! cargo run --release --example cert_hygiene -- 99      # custom seed
//! ```

use opcua_study::prelude::*;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2020);

    let net = Internet::new(VirtualClock::default());
    let universe: Cidr = "10.80.0.0/21".parse().unwrap();
    // Certificate-focused strata, plus a healthy control group and a
    // couple of discovery servers so referral-discovered hosts join the
    // certificate analysis too.
    let mix = StrataMix::new()
        .with(HostClass::ExpiredCert, 8)
        .with(HostClass::WeakCert, 8)
        .with(HostClass::ReusedCert, 10)
        .with(HostClass::SharedPrime, 4)
        .with(HostClass::SecureModern, 8)
        .with(HostClass::SecureCa, 4)
        .with(HostClass::DiscoveryServer, 2)
        .with(HostClass::HiddenServer, 3);
    let cfg = PopulationConfig::new(seed, vec![universe], mix);
    let population = synthesize(&net, &cfg);
    println!(
        "deployed {} hosts in {universe} (seed {seed})",
        population.len()
    );

    let scanner = Scanner::new(net, Blocklist::new(), ScanConfig::default());
    let (summary, records) = scanner.scan_collect(&[universe], seed);
    println!(
        "scanned: {} OPC UA hosts ({} via LDS referral), {} certificates collected\n",
        summary.opcua_hosts,
        summary.referrals.opcua_hosts,
        records
            .iter()
            .map(|r| r.certificates().len())
            .sum::<usize>(),
    );

    let report = assess(&records);

    // --- Walkthrough, one §5 finding at a time. ---
    let check = |label: &str, found: usize, expected: usize| {
        let mark = if found == expected { "ok" } else { "MISMATCH" };
        println!("  {label:<42} found {found:>3}, ground truth {expected:>3}  [{mark}]");
    };

    println!("certificate validity (§5.2):");
    check(
        "expired at scan time",
        report.count(Deficit::ExpiredCertificate),
        population.count(HostClass::ExpiredCert),
    );

    println!("\ncertificate strength vs advertised policy (§5.2):");
    check(
        "hash/key too weak for policy",
        report.count(Deficit::CertificateTooWeak),
        population.count(HostClass::WeakCert),
    );

    println!("\ncertificate reuse across hosts (§5.3):");
    check(
        "hosts serving a shared certificate",
        report.count(Deficit::ReusedCertificate),
        population.count(HostClass::ReusedCert),
    );
    for cluster in &report.reuse_clusters {
        println!(
            "    cluster {}…: {} hosts ({} … {})",
            &cluster.thumbprint_hex[..16],
            cluster.hosts.len(),
            cluster.hosts.first().unwrap(),
            cluster.hosts.last().unwrap(),
        );
    }

    println!("\nshared prime factors, batch GCD (§5.3):");
    check(
        "hosts whose RSA moduli share a prime",
        report.count(Deficit::SharedPrimeKey),
        population.count(HostClass::SharedPrime),
    );
    for pair in &report.shared_prime_pairs {
        println!(
            "    {} ↔ {}  (keys factorable by the other's prime)",
            pair.a, pair.b
        );
    }

    println!("\nidentity chains:");
    // Every certificate-bearing stratum here is self-signed except the
    // CA-issued control group; LDS hosts serve no certificate at all.
    let self_signed_expected = [
        HostClass::ExpiredCert,
        HostClass::WeakCert,
        HostClass::ReusedCert,
        HostClass::SharedPrime,
        HostClass::SecureModern,
        HostClass::HiddenServer,
    ]
    .iter()
    .map(|&c| population.count(c))
    .sum::<usize>();
    check(
        "self-signed certificates",
        report.count(Deficit::SelfSignedCertificate),
        self_signed_expected,
    );
    // Whoever is left after removing self-signed hosts and the
    // certificate-less LDS hosts must be the CA-issued control group.
    let cert_less = report
        .host_reports
        .iter()
        .filter(|h| h.is_discovery_server)
        .count();
    check(
        "CA-issued certificates (clean)",
        report.hosts - report.count(Deficit::SelfSignedCertificate) - cert_less,
        population.count(HostClass::SecureCa),
    );

    println!("\n{report}");
}
