//! Abort a sweep mid-flight, resume it from the checkpoint, and prove
//! the stitched output is byte-identical to a run that was never
//! interrupted.
//!
//! The event-loop engine (`scanner::sched`) polls a [`CancelToken`]
//! between timer firings. `CancelToken::after_records(n)` arms a
//! deterministic abort: for a fixed seed the scan stops on the same
//! record every run, so this demo — and the CI gate that greps its
//! output for `MISMATCH` — is reproducible.
//!
//! Two levels are exercised:
//!
//! 1. **Scanner**: `scan_resumable` aborted at ~50%, resumed from the
//!    returned [`SweepCheckpoint`]; record streams must concatenate to
//!    the uninterrupted stream.
//! 2. **Campaign**: `run_week_resumable` aborted mid-week; the shared
//!    campaign clock must not move, and `resume_week` must complete
//!    the week byte-identically — plus the *following* week.
//!
//! ```sh
//! cargo run --release --example abort_resume            # default seed
//! cargo run --release --example abort_resume -- 1234    # custom seed
//! ```

use opcua_study::prelude::*;

fn build(seed: u64) -> (Scanner, Vec<Cidr>) {
    let net = Internet::new(VirtualClock::default());
    let universe: Vec<Cidr> = vec!["10.48.0.0/21".parse().unwrap()];
    let cfg = PopulationConfig::new(seed, universe.clone(), StrataMix::paper_like(80));
    synthesize(&net, &cfg);
    let config = ScanConfig {
        engine: ScanEngine::EventLoop,
        max_in_flight: 16,
        ..ScanConfig::default()
    };
    (Scanner::new(net, Blocklist::new(), config), universe)
}

fn check(label: &str, ok: bool) -> bool {
    println!("{} {label}", if ok { "[ok]      " } else { "[MISMATCH]" });
    ok
}

/// Summaries must stitch exactly except the cert-interner `sightings`
/// counter, which counts work performed: certificates captured by
/// discarded in-flight probes are sighted again on re-probe.
fn summaries_match(a: &ScanSummary, b: &ScanSummary) -> bool {
    a.sweep == b.sweep
        && a.referrals == b.referrals
        && a.opcua_hosts == b.opcua_hosts
        && a.non_opcua_hosts == b.non_opcua_hosts
        && a.started_unix == b.started_unix
        && a.finished_unix == b.finished_unix
        && a.certs.distinct == b.certs.distinct
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2020);
    let mut all_ok = true;

    // --- Level 1: one scan, aborted at ~50% and resumed. -------------
    let (scanner, universe) = build(seed);
    let certs = CertStore::new();
    let mut baseline = Vec::new();
    let baseline_summary =
        match scanner.scan_resumable(&universe, seed, &certs, None, &CancelToken::new(), |r| {
            baseline.push(r)
        }) {
            ScanOutcome::Complete { summary, engine } => {
                println!(
                    "baseline: {} records, in-flight high water {} (cap 16), \
                 {} timers fired, {} wheel cascades",
                    baseline.len(),
                    engine.in_flight_high_water,
                    engine.timers_fired,
                    engine.wheel_cascades,
                );
                summary
            }
            ScanOutcome::Aborted { .. } => unreachable!("no cancellation armed"),
        };

    let (scanner, universe) = build(seed);
    let certs = CertStore::new();
    let mut stitched = Vec::new();
    let token = CancelToken::after_records(baseline.len() as u64 / 2);
    let checkpoint =
        match scanner.scan_resumable(&universe, seed, &certs, None, &token, |r| stitched.push(r)) {
            ScanOutcome::Aborted { checkpoint } => checkpoint,
            ScanOutcome::Complete { .. } => unreachable!("budgeted token must abort"),
        };
    println!(
        "aborted after {} of {} records: checkpoint at walk step {}, {} probes in flight discarded",
        stitched.len(),
        baseline.len(),
        checkpoint.next_step,
        checkpoint.in_flight.len(),
    );
    let resumed_summary = match scanner.scan_resumable(
        &universe,
        seed,
        &certs,
        Some(*checkpoint),
        &CancelToken::new(),
        |r| stitched.push(r),
    ) {
        ScanOutcome::Complete { summary, .. } => summary,
        ScanOutcome::Aborted { .. } => unreachable!("no cancellation armed on resume"),
    };
    all_ok &= check("stitched record stream equals uninterrupted run", {
        stitched == baseline
    });
    all_ok &= check(
        "stitched summary equals uninterrupted run",
        summaries_match(&resumed_summary, &baseline_summary),
    );

    // --- Level 2: a weekly campaign aborted mid-week. -----------------
    let weeks = |resumable: bool| {
        let (scanner, universe) = build(seed);
        let mut campaign = Campaign::new(scanner);
        let mut out = Vec::new();
        for _ in 0..2 {
            if resumable {
                let half = CancelToken::after_records(40);
                match campaign.run_week_resumable(&universe, seed, |_| {}, &half) {
                    WeekOutcome::Complete(scan) => out.push(scan),
                    WeekOutcome::Aborted(cp) => {
                        match campaign.resume_week(&universe, seed, *cp, &CancelToken::new()) {
                            WeekOutcome::Complete(scan) => out.push(scan),
                            WeekOutcome::Aborted(_) => unreachable!("resume token never cancels"),
                        }
                    }
                }
            } else {
                out.push(campaign.run_week(&universe, seed, |_| {}));
            }
        }
        out
    };
    let uninterrupted = weeks(false);
    let (scanner, universe) = build(seed);
    let mut campaign = Campaign::new(scanner);
    let clock_before = campaign.scanner().internet().clock().now_micros();
    let token = CancelToken::after_records(40);
    let cp = match campaign.run_week_resumable(&universe, seed, |_| {}, &token) {
        WeekOutcome::Aborted(cp) => cp,
        WeekOutcome::Complete(_) => unreachable!("budgeted token must abort the week"),
    };
    all_ok &= check(
        "aborted week leaves the campaign clock untouched",
        campaign.scanner().internet().clock().now_micros() == clock_before
            && campaign.weeks_run() == 0,
    );
    let week0 = match campaign.resume_week(&universe, seed, *cp, &CancelToken::new()) {
        WeekOutcome::Complete(scan) => scan,
        WeekOutcome::Aborted(_) => unreachable!("resume token never cancels"),
    };
    let week1 = match campaign.run_week_resumable(&universe, seed, |_| {}, &CancelToken::new()) {
        WeekOutcome::Complete(scan) => scan,
        WeekOutcome::Aborted(_) => unreachable!("uncancelled week completes"),
    };
    all_ok &= check(
        "resumed week 0 records equal uninterrupted week 0",
        week0.records == uninterrupted[0].records
            && summaries_match(&week0.summary, &uninterrupted[0].summary),
    );
    all_ok &= check(
        "week 1 after a mid-week abort equals uninterrupted week 1",
        week1.records == uninterrupted[1].records
            && summaries_match(&week1.summary, &uninterrupted[1].summary),
    );

    if !all_ok {
        std::process::exit(1);
    }
    println!("abort/resume determinism holds (seed {seed})");
}
