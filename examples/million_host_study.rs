//! A 30-week longitudinal study over a **million-address universe** in
//! bounded memory — the lazy-materialization showcase.
//!
//! The eager pipeline builds every deployment up front, so world-build
//! cost and resident memory scale with the population *and* the
//! address space bookkeeping around it. `EvolvingWorld::new_lazy`
//! instead installs only a seeded occupancy predicate: the scanner
//! sweeps all ~1M addresses of `10.0.0.0/12`, and a host is
//! synthesized — keys, certificate, address space, referral wiring —
//! the first time a probe actually reaches it, as a pure function of
//! `(seed, host id, week)`. Resident cost tracks the ~120 responsive
//! hosts, not the 1,048,576 addresses; CI runs this example under a
//! hard `ulimit -v` to hold that claim.
//!
//! Two self-checks print `[ok]`/`[MISMATCH]` (CI greps for the
//! latter):
//!
//! 1. **Equivalence** — on a small shared world, an eager and a lazy
//!    deployment must produce byte-identical scan records.
//! 2. **Frugality** — across the whole study the lazy world must have
//!    materialized exactly the hosts that ever lived (initial
//!    population + arrivals), and not one more.
//!
//! ```sh
//! cargo run --release --example million_host_study             # 30 weeks
//! cargo run --release --example million_host_study -- 1234 4   # seed, workers
//! cargo run --release --example million_host_study -- 1234 4 6 # ... 6 weeks
//! ```

use opcua_study::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2020);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let weeks: u32 = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30)
        .max(1);

    // ── Check 1: lazy is byte-identical to eager on a shared world ──
    let check_universe: Cidr = "10.32.0.0/20".parse().unwrap();
    let check_cfg = PopulationConfig::new(seed, vec![check_universe], StrataMix::paper_like(60));
    let eager_net = Internet::new(VirtualClock::default());
    synthesize(&eager_net, &check_cfg);
    let (eager_summary, eager_records) =
        Scanner::new(eager_net, Blocklist::new(), ScanConfig::default())
            .scan_collect(&[check_universe], seed);
    let lazy_net = Internet::new(VirtualClock::default());
    let check_world = LazyWorld::deploy(&lazy_net, &check_cfg);
    let (lazy_summary, lazy_records) =
        Scanner::new(lazy_net, Blocklist::new(), ScanConfig::default())
            .scan_collect(&[check_universe], seed);
    let identical = eager_summary == lazy_summary && eager_records == lazy_records;
    println!(
        "eager vs lazy on {check_universe}: {} records, materialized {}  [{}]",
        lazy_records.len(),
        check_world.stats().hosts_materialized,
        if identical { "ok" } else { "MISMATCH" }
    );

    // ── The study: ~120 hosts hiding in 1,048,576 addresses ─────────
    let universe: Cidr = "10.0.0.0/12".parse().unwrap();
    let cfg = PopulationConfig::new(seed, vec![universe], StrataMix::paper_like(120));
    let net = Internet::new(VirtualClock::default());
    let mut world = EvolvingWorld::new_lazy(&net, &cfg, ChurnConfig::default());
    let initial_hosts = world.alive_count();
    println!(
        "\nmillion-host study: {initial_hosts} hosts in {universe} \
         ({} addresses), {weeks} weekly campaigns, {workers} workers (seed {seed})",
        universe.size()
    );
    println!(
        "world deployed lazily: {} hosts materialized so far",
        world.stats().hosts_materialized
    );

    let scan_config = ScanConfig {
        workers,
        ..ScanConfig::default()
    };
    let mut campaign = Campaign::new(Scanner::new(net, Blocklist::new(), scan_config));
    println!(
        "\n{:>4} {:>6} {:>6} {:>12} {:>14}",
        "week", "hosts", "built", "keygens", "peak resident"
    );
    for week in 0..weeks {
        let scan = {
            let world = &mut world;
            campaign.run_week(&[universe], seed, |w| {
                if w > 0 {
                    world.evolve(w);
                }
            })
        };
        let stats = world.stats();
        println!(
            "{week:>4} {:>6} {:>6} {:>12} {:>13}B",
            scan.summary.opcua_hosts,
            stats.hosts_materialized,
            stats.keygen_count,
            stats.peak_bytes_resident_estimate,
        );
    }

    // ── Check 2: only hosts that ever lived were materialized ───────
    let arrivals: usize = world.history().iter().map(|w| w.arrivals()).sum();
    let ever_alive = initial_hosts + arrivals;
    let stats = world.stats();
    println!(
        "\nhosts ever alive: {initial_hosts} initial + {arrivals} arrivals = {ever_alive}; \
         materialized {}  [{}]",
        stats.hosts_materialized,
        if stats.hosts_materialized == ever_alive as u64 {
            "ok"
        } else {
            "MISMATCH"
        }
    );
    println!(
        "peak resident estimate ~{} KiB for a {}-address universe \
         ({} bytes per materialized host, 0 bytes per vacant address)",
        stats.peak_bytes_resident_estimate / 1024,
        universe.size(),
        stats
            .peak_bytes_resident_estimate
            .checked_div(stats.hosts_materialized)
            .unwrap_or(0),
    );
}
