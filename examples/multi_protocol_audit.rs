//! Audit a two-protocol Internet — plain `opc.tcp` next to TLS-wrapped
//! `uat-tls` — with one campaign, and prove the suite layer's story
//! against planted ground truth.
//!
//! The world deploys the usual OPC UA strata on 4840 plus
//! [`MultiProtoPlan`]'s TLS strata on 4843: wrappers done right,
//! wrappers over anonymous inner servers, and wrappers serving expired
//! certificates — the "Missed Opportunities" deficits. Both suites run
//! with vendor fingerprinting, so the audit also recovers the vendor
//! each synthesized stack betrays through its error taxonomy. Checks:
//!
//! 1. **Coverage**: every planted `uat-tls` host yields a speaking
//!    record; typed payloads partition the records by suite.
//! 2. **Deficit columns**: TLS-but-anonymous and TLS-cert-expired
//!    counts equal the planted strata exactly.
//! 3. **Vendor breakdown**: fingerprinting attributes every host — on
//!    both ports — to exactly the vendor the synthesis planted.
//! 4. **Composition**: the mixed-registry sweep equals the literal
//!    concatenation of the single-suite sweeps.
//! 5. **Determinism**: the campaign is byte-identical across engines
//!    and worker counts.
//!
//! ```sh
//! cargo run --release --example multi_protocol_audit                      # default seed
//! cargo run --release --example multi_protocol_audit -- 1234              # custom seed
//! cargo run --release --example multi_protocol_audit -- 2020 4            # 4 workers
//! cargo run --release --example multi_protocol_audit -- 2020 1 event_loop # engine flip
//! ```
//!
//! The optional second/third arguments pick the worker count and scan
//! engine for the *main* campaign; stdout must be byte-identical for
//! any choice (CI diffs them).

use std::sync::Arc;

use opcua_study::prelude::*;

/// Sweep-visible strata only (no referral-only classes), so planted
/// hosts correspond 1:1 to sweep records and the vendor oracle is
/// exact without referral-reachability caveats.
fn sweep_mix() -> StrataMix {
    StrataMix::new()
        .with(HostClass::WideOpen, 8)
        .with(HostClass::DeprecatedOnly, 6)
        .with(HostClass::MixedLegacy, 6)
        .with(HostClass::SecureModern, 5)
        .with(HostClass::ExpiredCert, 3)
        .with(HostClass::ReusedCert, 4)
        .with(HostClass::DiscoveryServer, 4)
}

/// A fresh, identically-seeded two-protocol world per run (two scans
/// over one net would advance the same clock twice).
fn build(seed: u64) -> (Internet, Vec<Cidr>, Population, MultiProtoPlan) {
    let net = Internet::new(VirtualClock::default());
    let universe: Vec<Cidr> = vec!["10.62.0.0/22".parse().unwrap()];
    let cfg = PopulationConfig::new(seed, universe.clone(), sweep_mix());
    let population = synthesize(&net, &cfg);
    let plan = MultiProtoPlan::deploy(&net, &universe, &MultiProtoConfig::sample(), seed);
    (net, universe, population, plan)
}

fn audit_config(engine: ScanEngine, workers: usize) -> ScanConfig {
    ScanConfig::builder()
        .engine(engine)
        .workers(workers)
        .suite(DEFAULT_OPCUA_PORT, Arc::new(OpcUaSuite::with_fingerprint()))
        .suite(
            DEFAULT_UATLS_PORT,
            Arc::new(UatTlsSuite::with_fingerprint()),
        )
        .build()
        .expect("valid two-suite config")
}

fn scan(
    seed: u64,
    config: ScanConfig,
) -> (ScanSummary, Vec<ScanRecord>, Population, MultiProtoPlan) {
    let (net, universe, population, plan) = build(seed);
    let (summary, records) =
        Scanner::new(net, Blocklist::new(), config).scan_collect(&universe, seed);
    (summary, records, population, plan)
}

fn check(label: &str, ok: bool) -> bool {
    println!("{} {label}", if ok { "[ok]      " } else { "[MISMATCH]" });
    ok
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2020);
    let workers: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let engine = match std::env::args().nth(3).as_deref() {
        Some("event_loop") => ScanEngine::EventLoop,
        _ => ScanEngine::Threaded,
    };
    let mut all_ok = true;

    // --- The two-suite campaign, against the planted oracles. --------
    let (summary, records, population, plan) = scan(seed, audit_config(engine, workers));

    // Partition the records by typed payload. Exhaustive on purpose:
    // adding a suite must force this audit to account for its records
    // (ua-lint rejects a `_` arm here).
    let (mut opcua_speakers, mut tls_speakers, mut silent) = (0usize, 0usize, 0usize);
    for r in &records {
        match &r.payload {
            ProtocolPayload::OpcUa(p) => {
                if p.hello_ok {
                    opcua_speakers += 1;
                } else {
                    silent += 1;
                }
            }
            ProtocolPayload::UatTls(p) => {
                if p.tls_ok {
                    tls_speakers += 1;
                } else {
                    silent += 1;
                }
            }
        }
    }
    println!(
        "campaign: {} records — {opcua_speakers} opc.tcp speakers, \
         {tls_speakers} uat-tls speakers, {silent} silent",
        records.len(),
    );
    for class in TlsClass::ALL {
        println!("  planted {:<20} {}", class.label(), plan.count(class));
    }
    all_ok &= check(
        "every planted uat-tls host speaks the prologue",
        tls_speakers == plan.hosts.len(),
    );
    all_ok &= check(
        "every swept opc.tcp host completes the hello",
        opcua_speakers == population.len(),
    );

    // --- Deficit columns and vendor breakdown. ------------------------
    let report = assess(&records);
    all_ok &= check(
        "TLS-but-anonymous column matches the planted stratum",
        report.count(Deficit::TlsButAnonymous) == plan.expected_tls_anonymous(),
    );
    all_ok &= check(
        "TLS-cert-expired column matches the planted stratum",
        report.count(Deficit::TlsExpiredCert) == plan.expected_tls_expired(),
    );
    let mut expected_vendors = population_vendor_counts(&population);
    for (vendor, n) in plan.vendor_counts() {
        *expected_vendors.entry(vendor).or_default() += n;
    }
    all_ok &= check(
        "vendor fingerprints recover the planted breakdown on both ports",
        report.vendor_counts == expected_vendors && report.unfingerprinted == 0,
    );

    // --- Mixed registry == concatenation of single-suite sweeps. ------
    let opcua_only = ScanConfig::builder()
        .suite(DEFAULT_OPCUA_PORT, Arc::new(OpcUaSuite::with_fingerprint()))
        .build()
        .expect("valid opcua-only config");
    let uattls_only = ScanConfig::builder()
        .suite(
            DEFAULT_UATLS_PORT,
            Arc::new(UatTlsSuite::with_fingerprint()),
        )
        .referral_depth(0)
        .build()
        .expect("valid uat-tls-only config");
    let (_, opcua_records, _, _) = scan(seed, opcua_only);
    let (_, tls_records, _, _) = scan(seed, uattls_only);
    let concat: Vec<ScanRecord> = opcua_records.into_iter().chain(tls_records).collect();
    all_ok &= check(
        "mixed registry equals the concatenation of single-suite sweeps",
        records == concat,
    );

    // --- Byte identity across engines and worker counts. -------------
    for (other_engine, other_workers, label) in [
        (ScanEngine::Threaded, 4, "threaded, 4 workers"),
        (ScanEngine::EventLoop, 1, "event loop"),
        (ScanEngine::EventLoop, 8, "event loop (workers inert)"),
    ] {
        let (s, r, _, _) = scan(seed, audit_config(other_engine, other_workers));
        all_ok &= check(
            &format!("byte-identical: {label}"),
            s == summary && r == records,
        );
    }

    println!("\n{report}");
    if !all_ok {
        std::process::exit(1);
    }
    println!("multi-protocol ground truth and determinism hold (seed {seed})");
}
