//! Live deployment audit on the *incremental* assessment API: records
//! stream out of the sharded scanner and fold into an [`Assessor`] as
//! they arrive, printing running per-deficit counts while the campaign
//! is still probing — no record buffering anywhere.
//!
//! Deterministic: the same seed prints the same numbers for any worker
//! count.
//!
//! ```sh
//! cargo run --release --example deployment_audit            # defaults
//! cargo run --release --example deployment_audit -- 7 4     # seed 7, 4 workers
//! ```

use assessment::Assessor;
use opcua_study::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2020);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);

    let net = Internet::new(VirtualClock::default());
    let universe: Cidr = "10.60.0.0/21".parse().unwrap();
    let cfg = PopulationConfig::new(seed, vec![universe], StrataMix::paper_like(120));
    let population = synthesize(&net, &cfg);
    println!(
        "auditing {} deployments in {universe} (seed {seed})",
        population.len()
    );

    let config = ScanConfig {
        workers,
        ..ScanConfig::default()
    };
    let scanner = Scanner::new(net, Blocklist::new(), config);
    let mut stream = scanner.scan_stream(vec![universe], seed);

    // The running tallies we narrate while the scan streams. Cross-host
    // deficits (reused certs, shared primes) stay 0 until finalize —
    // they cannot be attributed before the population is complete.
    let watched = [
        Deficit::OnlyNoneMode,
        Deficit::DeprecatedPolicy,
        Deficit::AnonymousAccess,
        Deficit::DataWritable,
    ];
    let mut assessor = Assessor::new();
    for record in stream.by_ref() {
        assessor.fold(&record);
        let seen = assessor.hosts_seen();
        if seen > 0 && seen.is_multiple_of(25) {
            let counts: Vec<String> = watched
                .iter()
                .map(|&d| format!("{}: {}", d.label(), assessor.running_count(d)))
                .collect();
            println!("  after {seen:>4} hosts — {}", counts.join(", "));
        }
    }
    let summary = stream.finish();
    println!(
        "scan done: {} probes sent, {} OPC UA hosts, {} other listeners",
        summary.sweep.probes_sent, summary.opcua_hosts, summary.non_opcua_hosts
    );

    // Batch GCD and cross-host clustering happen only now.
    let report = assessor.finalize();
    println!("\n{report}");
}
