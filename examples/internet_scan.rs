//! An Internet-wide measurement campaign, end to end: a paper-like
//! population spread across several announced prefixes, a streaming scan
//! with an opt-out blocklist, and the full configuration assessment.
//!
//! Deterministic: the same seed prints the same numbers.
//!
//! Deterministic in the worker count too: sharded scans merge back into
//! discovery order, so the printed output is byte-identical whether one
//! worker runs the campaign or eight (CI diffs exactly that).
//!
//! ```sh
//! cargo run --release --example internet_scan              # default seed
//! cargo run --release --example internet_scan -- 1234      # custom seed
//! cargo run --release --example internet_scan -- 1234 8    # ... 8 workers
//! cargo run --release --example internet_scan -- 1234 1 event_loop
//! #   ... single-threaded timer-wheel engine; output is byte-identical
//! ```

use opcua_study::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2020);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let engine = match args.next().as_deref() {
        Some("event_loop") => ScanEngine::EventLoop,
        _ => ScanEngine::Threaded,
    };

    let net = Internet::new(VirtualClock::default());
    // Several announced blocks — regional ISPs, an IoT ISP, hosting.
    let universe: Vec<Cidr> = [
        "10.16.0.0/18",
        "100.64.0.0/19",
        "172.22.0.0/20",
        "198.18.0.0/21",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect();

    // ~150 deployments mixing every configuration stratum of §5-§6.
    let cfg = PopulationConfig::new(seed, universe.clone(), StrataMix::paper_like(150));
    let population = synthesize(&net, &cfg);
    println!(
        "population: {} hosts over {} prefixes (seed {seed})",
        population.len(),
        universe.len()
    );

    // The paper honors opt-out requests: blocklist one /24.
    let mut blocklist = Blocklist::new();
    blocklist.add_str("10.16.7.0/24").unwrap();

    // Stream records through the bounded channel while the scan runs,
    // sharded across `workers` probe threads — or multiplexed on the
    // single-threaded timer-wheel engine. The output below must mention
    // neither the worker count nor the engine: CI diffs a 1-worker, a
    // 4-worker, and an event-loop run to enforce that determinism.
    let config = ScanConfig {
        workers,
        engine,
        ..ScanConfig::default()
    };
    let scanner = Scanner::new(net, blocklist, config);
    let mut stream = scanner.scan_stream(universe, seed);
    let mut records = Vec::new();
    for record in stream.by_ref() {
        if records.is_empty() {
            println!("first responsive host: {}", record.address);
        }
        records.push(record);
    }
    let summary = stream.finish();
    println!(
        "sweep: {} probes sent, {} blocklisted, {} responsive ({} OPC UA, {} other)",
        summary.sweep.probes_sent,
        summary.sweep.blocklisted,
        summary.sweep.responsive,
        summary.opcua_hosts,
        summary.non_opcua_hosts,
    );
    println!(
        "referrals: {} announced, {} followed ({} OPC UA, {} dead), {} deduped, {} unfollowable, max depth {}",
        summary.referrals.urls_announced,
        summary.referrals.followed,
        summary.referrals.opcua_hosts,
        summary.referrals.dead,
        summary.referrals.already_probed,
        summary.referrals.unfollowable,
        summary.referrals.max_depth,
    );
    println!(
        "virtual campaign time: {} s",
        summary.finished_unix - summary.started_unix
    );

    let report = assess(&records);
    println!("\n{report}");

    // The acceptance numbers, spelled out.
    println!("headline shares (of {} OPC UA hosts):", report.hosts);
    for deficit in [
        Deficit::OnlyNoneMode,
        Deficit::NoneModeOffered,
        Deficit::DeprecatedPolicy,
        Deficit::SelfSignedCertificate,
        Deficit::ExpiredCertificate,
        Deficit::CertificateTooWeak,
        Deficit::ReusedCertificate,
        Deficit::SharedPrimeKey,
        Deficit::AnonymousAccess,
        Deficit::DataWritable,
    ] {
        println!(
            "  {:<30} {:>5.1} %  ({} hosts)",
            deficit.label(),
            100.0 * report.share(deficit),
            report.count(deficit),
        );
    }
}
