//! Factory-telemetry walkthrough on the real pipeline (§6, Figure 7):
//! a plant-floor-shaped population — wide-open telemetry endpoints,
//! "supports everything" mixed-legacy servers, hidden servers behind a
//! discovery server, broken session configs, and a reused vendor
//! certificate — is deployed, scanned, and assessed, then the
//! data-access findings (readable sensors, *writable* setpoints,
//! executable maintenance methods) and the certificate-interning
//! counters are cross-checked against the deployment ground truth.
//!
//! Deterministic: the same seed prints the same numbers.
//!
//! ```sh
//! cargo run --release --example factory_telemetry           # default seed
//! cargo run --release --example factory_telemetry -- 99     # custom seed
//! ```

use opcua_study::prelude::*;
use population::HostGroundTruth;
use std::collections::HashSet;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2020);

    let net = Internet::new(VirtualClock::default());
    let universe: Cidr = "10.90.0.0/21".parse().unwrap();
    // Telemetry-shaped strata: lots of anonymously reachable process
    // data, a referral layer hiding part of the fleet, a faulty-session
    // group, and a reused certificate so the interning counters have
    // ground truth to match.
    let mix = StrataMix::new()
        .with(HostClass::WideOpen, 14)
        .with(HostClass::MixedLegacy, 10)
        .with(HostClass::BrokenSession, 5)
        .with(HostClass::SecureModern, 6)
        .with(HostClass::ReusedCert, 6)
        .with(HostClass::DiscoveryServer, 2)
        .with(HostClass::HiddenServer, 4);
    let cfg = PopulationConfig::new(seed, vec![universe], mix);
    let population = synthesize(&net, &cfg);
    println!(
        "deployed {} plant hosts in {universe} (seed {seed})",
        population.len()
    );

    let scanner = Scanner::new(net, Blocklist::new(), ScanConfig::default());
    let (summary, records) = scanner.scan_collect(&[universe], seed);
    println!(
        "scanned: {} OPC UA hosts ({} via LDS referral), {} anonymous sessions activated",
        summary.opcua_hosts,
        summary.referrals.opcua_hosts,
        records
            .iter()
            .filter(|r| r.session() == SessionOutcome::AnonymousActivated)
            .count(),
    );

    let report = assess(&records);

    let check = |label: &str, found: usize, expected: usize| {
        let mark = if found == expected { "ok" } else { "MISMATCH" };
        println!("  {label:<44} found {found:>3}, ground truth {expected:>3}  [{mark}]");
    };
    let n = |class: HostClass| population.count(class);
    // The classes whose servers accept an anonymous session and expose
    // a process address space (discovery servers expose none).
    let data_classes = [
        HostClass::WideOpen,
        HostClass::MixedLegacy,
        HostClass::HiddenServer,
    ];
    let data_hosts = |pred: &dyn Fn(&HostGroundTruth) -> bool| {
        population
            .hosts
            .iter()
            .filter(|h| data_classes.contains(&h.class) && pred(h))
            .count()
    };

    println!("\nanonymous exposure (§5.4):");
    check(
        "anonymous access advertised",
        report.count(Deficit::AnonymousAccess),
        n(HostClass::WideOpen)
            + n(HostClass::MixedLegacy)
            + n(HostClass::BrokenSession)
            + n(HostClass::DiscoveryServer)
            + n(HostClass::HiddenServer),
    );
    check(
        "advertised but broken session config",
        report.count(Deficit::BrokenSessionConfig),
        n(HostClass::BrokenSession),
    );

    println!("\naccessible process data (§6, Figure 7):");
    check(
        "telemetry readable anonymously",
        report.count(Deficit::DataReadable),
        data_hosts(&|h| h.variables > 0),
    );
    check(
        "setpoints writable anonymously",
        report.count(Deficit::DataWritable),
        data_hosts(&|h| h.writable_variables > 0),
    );
    check(
        "maintenance methods executable",
        report.count(Deficit::MethodsExecutable),
        data_hosts(&|h| h.executable_methods > 0),
    );
    let traversed: usize = records
        .iter()
        .filter_map(|r| r.traversal())
        .map(|t| t.nodes)
        .sum();
    println!("    ({traversed} nodes traversed across all activated sessions)");

    println!("\ncertificate interning (campaign-wide CertStore):");
    // Every certificate-bearing host serves exactly one certificate;
    // the ReusedCert stratum shares a single one. The store's distinct
    // count must therefore match the ground truth's distinct
    // thumbprints exactly.
    let truth_distinct: HashSet<[u8; 20]> = population
        .hosts
        .iter()
        .filter_map(|h| h.cert_thumbprint)
        .collect();
    check(
        "distinct certificates interned",
        summary.certs.distinct as usize,
        truth_distinct.len(),
    );
    check(
        "hosts sharing the reused certificate",
        report.count(Deficit::ReusedCertificate),
        n(HostClass::ReusedCert),
    );
    println!(
        "    {} sightings collapsed into {} parses ({:.0} % intern hit rate)",
        summary.certs.sightings,
        summary.certs.distinct,
        summary.certs.hit_rate() * 100.0,
    );

    println!("\n{report}");
}
