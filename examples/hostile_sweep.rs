//! Sweep a hostile Internet — lossy paths, flaky stacks, tarpits, and
//! rate-limiting firewalls — and prove the retry layer's story against
//! planted ground truth.
//!
//! [`MiddleboxPlan`] lays a deterministic fault profile over every
//! synthesized host (drawn from the campaign seed; firewalled /24s
//! share one middlebox). Because the plan can *replay* the exact fate
//! sequence a retrying scanner sees, it predicts — host by host —
//! which addresses a 4-attempt budget recovers and how the rest must
//! be classified. This demo checks the scanner against that oracle:
//!
//! 1. **Recovery**: every recoverable planted host ends `Ok`.
//! 2. **Classification**: every unrecoverable host's [`HostOutcome`]
//!    matches its replayed terminal fate (timed out / throttled /
//!    tarpitted).
//! 3. **Undercount**: a polite single-attempt baseline misses hosts a
//!    retrying scanner recovers — the bias the layer exists to fix.
//! 4. **Determinism**: the hostile sweep is byte-identical across
//!    engines and worker counts.
//!
//! ```sh
//! cargo run --release --example hostile_sweep                      # default seed
//! cargo run --release --example hostile_sweep -- 1234              # custom seed
//! cargo run --release --example hostile_sweep -- 2020 4            # 4 workers
//! cargo run --release --example hostile_sweep -- 2020 1 event_loop # engine flip
//! ```
//!
//! The optional second/third arguments pick the worker count and scan
//! engine for the *main* sweep; stdout must be byte-identical for any
//! choice (CI diffs them).

use std::collections::BTreeMap;
use std::sync::Arc;

use opcua_study::netsim::ConnectFate;
use opcua_study::prelude::*;

/// Sweep-visible strata only: no hidden/chained (referral-only)
/// classes, so planted hosts correspond 1:1 to sweep records and the
/// recovery check needs no referral-reachability caveats.
fn sweep_mix() -> StrataMix {
    StrataMix::new()
        .with(HostClass::WideOpen, 16)
        .with(HostClass::DeprecatedOnly, 10)
        .with(HostClass::MixedLegacy, 10)
        .with(HostClass::SecureModern, 8)
        .with(HostClass::ExpiredCert, 4)
        .with(HostClass::WeakCert, 4)
        .with(HostClass::ReusedCert, 6)
        .with(HostClass::BrokenSession, 4)
        .with(HostClass::DiscoveryServer, 10)
}

/// A fresh world per run (two scans over one net would advance the
/// same clock twice), with the hostile middlebox plan installed.
fn build(
    seed: u64,
    retry: RetryPolicy,
    engine: ScanEngine,
    workers: usize,
) -> (Scanner, Vec<Cidr>, Population, MiddleboxPlan) {
    let net = Internet::new(VirtualClock::default());
    let universe: Vec<Cidr> = vec!["10.60.0.0/21".parse().unwrap()];
    let cfg = PopulationConfig::new(seed, universe.clone(), sweep_mix());
    let population = synthesize(&net, &cfg);
    let plan = MiddleboxPlan::plan(&population, &MiddleboxConfig::hostile(), seed);
    net.set_profiles(Arc::new(plan.clone()));
    let config = ScanConfig {
        engine,
        workers,
        retry,
        ..ScanConfig::default()
    };
    (
        Scanner::new(net, Blocklist::new(), config),
        universe,
        population,
        plan,
    )
}

fn check(label: &str, ok: bool) -> bool {
    println!("{} {label}", if ok { "[ok]      " } else { "[MISMATCH]" });
    ok
}

/// The outcome class a replayed terminal fate must surface as.
fn expected_outcome(fate: ConnectFate) -> HostOutcome {
    match fate {
        ConnectFate::Deliver => HostOutcome::Ok,
        ConnectFate::SynLost => HostOutcome::TimedOut,
        ConnectFate::Throttled { .. } => HostOutcome::Throttled,
        ConnectFate::Tarpit(_) => HostOutcome::Tarpitted,
    }
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2020);
    let workers: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let engine = match std::env::args().nth(3).as_deref() {
        Some("event_loop") => ScanEngine::EventLoop,
        _ => ScanEngine::Threaded,
    };
    let mut all_ok = true;
    let budget = RetryPolicy::hostile().max_attempts;

    // --- The hostile sweep, against the planted oracle. --------------
    let (scanner, universe, population, plan) =
        build(seed, RetryPolicy::hostile(), engine, workers);
    let (summary, records) = scanner.scan_collect(&universe, seed);
    let faults = summary.faults;
    println!(
        "hostile sweep: {} records — {} ok, {} timed out, {} throttled, {} tarpitted; \
         {} hosts retried, {} connect attempts, {:.1} s backoff",
        records.len(),
        faults.ok,
        faults.timed_out,
        faults.throttled,
        faults.tarpitted,
        faults.retried_hosts,
        faults.connect_attempts,
        faults.backoff_micros as f64 / 1e6,
    );
    for stratum in FaultStratum::ALL {
        let n = plan.stratum_count(stratum);
        if n > 0 {
            println!("  planted {:<16} {n}", stratum.label());
        }
    }

    let by_addr: BTreeMap<u32, HostOutcome> =
        records.iter().map(|r| (r.address.0, r.outcome)).collect();
    let recoverable = population
        .hosts
        .iter()
        .filter(|h| plan.recoverable(h.address, budget))
        .count();
    let recovered = population
        .hosts
        .iter()
        .filter(|h| {
            plan.recoverable(h.address, budget)
                && by_addr.get(&h.address.0) == Some(&HostOutcome::Ok)
        })
        .count();
    println!("recovery: {recovered}/{recoverable} recoverable planted hosts reached");
    all_ok &= check(
        "every recoverable planted host is recovered",
        recovered == recoverable,
    );
    all_ok &= check(
        "every planted host's outcome matches its replayed terminal fate",
        population.hosts.iter().all(|h| {
            by_addr.get(&h.address.0)
                == Some(&expected_outcome(plan.terminal_fate(h.address, budget)))
        }),
    );
    let (mut want_timed_out, mut want_throttled, mut want_tarpitted) = (0u64, 0u64, 0u64);
    for h in &population.hosts {
        match expected_outcome(plan.terminal_fate(h.address, budget)) {
            HostOutcome::TimedOut => want_timed_out += 1,
            HostOutcome::Throttled => want_throttled += 1,
            HostOutcome::Tarpitted => want_tarpitted += 1,
            _ => {}
        }
    }
    all_ok &= check(
        "fault tallies equal the planted unrecoverable counts",
        faults.timed_out == want_timed_out
            && faults.throttled == want_throttled
            && faults.tarpitted == want_tarpitted
            && faults.unrecovered() == want_timed_out + want_throttled + want_tarpitted,
    );

    // --- The polite baseline undercounts. ----------------------------
    let (polite, universe_p, _, _) = build(seed, RetryPolicy::default(), ScanEngine::EventLoop, 1);
    let (polite_summary, _) = polite.scan_collect(&universe_p, seed);
    println!(
        "polite baseline: {} ok vs {} ok with retries ({} hosts recovered by retrying)",
        polite_summary.faults.ok,
        faults.ok,
        faults.ok - polite_summary.faults.ok,
    );
    all_ok &= check(
        "a single-attempt scanner visibly undercounts the hostile net",
        polite_summary.faults.ok < faults.ok,
    );

    // --- Byte identity across engines and worker counts. -------------
    for (other_engine, other_workers, label) in [
        (ScanEngine::Threaded, 4, "threaded, 4 workers"),
        (ScanEngine::EventLoop, 1, "event loop"),
        (ScanEngine::EventLoop, 8, "event loop (workers inert)"),
    ] {
        let (other, universe_o, _, _) =
            build(seed, RetryPolicy::hostile(), other_engine, other_workers);
        let (s, r) = other.scan_collect(&universe_o, seed);
        all_ok &= check(
            &format!("byte-identical under fire: {label}"),
            s == summary && r == records,
        );
    }

    println!("\n{}", assess(&records));
    if !all_ok {
        std::process::exit(1);
    }
    println!("hostile-network determinism and ground truth hold (seed {seed})");
}
