//! The seven-month study, replayed: weekly internet-wide campaigns over
//! an *evolving* population (§4, §6 of the paper).
//!
//! A paper-like world is deployed on 2020-02-09 (the paper's first
//! measurement) and then churned week over week — DHCP-style IP
//! reassignment, host arrivals and departures, certificate renewals,
//! software upgrades and rollbacks, deficit remediation and regression.
//! Each week one full campaign (sweep + referral following) scans the
//! universe; consecutive campaigns are diffed into the paper's series:
//! hosts seen/new/vanished, stable-key-despite-IP-churn matches (the
//! certificate thumbprint is the cross-week identity, §4.3),
//! certificate renewals, `software_version` upgrade detection, and
//! deficit-rate trajectories.
//!
//! Every series is cross-checked against a ground-truth mirror built
//! from the world's true state with the same diffing rules — any
//! `[MISMATCH]` means the scanner lost track of the fleet (CI greps for
//! it).
//!
//! Deterministic: the same seed prints the same seven months, at any
//! worker count (CI diffs a 1-worker against a 4-worker run).
//!
//! Deterministic across *materialization modes*, too: with `lazy` as
//! the fourth argument the world is deployed through
//! [`EvolvingWorld::new_lazy`] — hosts built on first probe contact —
//! and stdout must stay byte-identical to the eager run (CI diffs the
//! two); the materialization counters go to stderr so diffs stay
//! clean.
//!
//! ```sh
//! cargo run --release --example seven_month_study                  # 30 weeks
//! cargo run --release --example seven_month_study -- 1234 4        # seed, workers
//! cargo run --release --example seven_month_study -- 1234 4 6      # ... 6 weeks
//! cargo run --release --example seven_month_study -- 1234 4 6 lazy # ... lazy world
//! cargo run --release --example seven_month_study -- 1234 4 6 eager event_loop
//! #   ... timer-wheel engine; stdout byte-identical to threaded runs
//! ```

use assessment::{diff, HostObservation, LongitudinalAssessor, WeekDelta, WeekSnapshot};
use opcua_study::prelude::*;

/// Gregorian (year, month, day) from unix seconds — Howard Hinnant's
/// civil-from-days, enough for the weekly date column.
fn ymd(unix: i64) -> (i64, u32, u32) {
    let days = unix.div_euclid(86_400);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let month = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let year = yoe + era * 400 + i64::from(month <= 2);
    (year, month, day)
}

/// What the scanner *should* observe this week — the world's own
/// scanner-visibility rule ([`EvolvingWorld::observable_truth`]),
/// projected into the differ's observation type.
fn truth_snapshot(week: u32, world: &EvolvingWorld) -> WeekSnapshot {
    WeekSnapshot {
        week,
        hosts: world
            .observable_truth()
            .into_iter()
            .map(|t| HostObservation {
                address: t.address,
                port: t.port,
                thumbprint: t.thumbprint,
                software_version: t.software_version,
            })
            .collect(),
    }
}

fn add(total: &mut WeekDelta, d: &WeekDelta) {
    total.hosts += d.hosts;
    total.new_hosts += d.new_hosts;
    total.vanished_hosts += d.vanished_hosts;
    total.stable_hosts += d.stable_hosts;
    total.moved_hosts += d.moved_hosts;
    total.renewed_certs += d.renewed_certs;
    total.upgrades += d.upgrades;
    total.downgrades += d.downgrades;
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2020);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    // At least one campaign: the study needs a baseline week, and the
    // summary arithmetic below assumes weeks >= 1.
    let weeks: u32 = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30)
        .max(1);
    // Remaining args, position-free: "eager"/"lazy" selects the world
    // materialization mode, "event_loop" the timer-wheel scan engine.
    let rest: Vec<String> = args.collect();
    let mode = rest
        .iter()
        .find(|a| a.as_str() != "event_loop")
        .cloned()
        .unwrap_or_else(|| "eager".into());
    let engine = if rest.iter().any(|a| a == "event_loop") {
        ScanEngine::EventLoop
    } else {
        ScanEngine::Threaded
    };

    // 2020-02-09, the paper's first campaign.
    let net = Internet::new(VirtualClock::default());
    let universe: Cidr = "10.32.0.0/20".parse().unwrap();
    let cfg = PopulationConfig::new(seed, vec![universe], StrataMix::paper_like(60));
    let mut world = match mode.as_str() {
        "eager" => EvolvingWorld::new(&net, &cfg, ChurnConfig::default()),
        "lazy" => EvolvingWorld::new_lazy(&net, &cfg, ChurnConfig::default()),
        other => panic!("unknown mode {other:?}: expected \"eager\" or \"lazy\""),
    };
    println!(
        "seven-month study: {} hosts in {universe}, {weeks} weekly campaigns (seed {seed})",
        world.alive_count()
    );

    let scan_config = ScanConfig {
        workers,
        engine,
        ..ScanConfig::default()
    };
    let mut campaign = Campaign::new(Scanner::new(net, Blocklist::new(), scan_config));
    let mut longitudinal = LongitudinalAssessor::new();

    // Ground-truth mirror: the same diff over the world's true state.
    let mut truth_prev: Option<WeekSnapshot> = None;
    let mut detected_total = WeekDelta::default();
    let mut truth_total = WeekDelta::default();
    let mut delta_mismatch_weeks = 0usize;
    let mut deficit_mismatch_weeks = 0usize;

    println!(
        "\n{:>4}  {:<10} {:>5} {:>4} {:>4} {:>5} {:>5} {:>3} {:>4}  {:>6} {:>6}",
        "week", "date", "hosts", "new", "gone", "moved", "renew", "up", "down", "none%", "anon%"
    );
    for week in 0..weeks {
        let scan = {
            let world = &mut world;
            campaign.run_week(&[universe], seed, |w| {
                if w > 0 {
                    world.evolve(w);
                }
            })
        };
        let report = assessment::assess(&scan.records);
        let point = longitudinal.fold_week(&scan.records, &report).clone();
        let d = point.delta;
        let (y, m, day) = ymd(scan.summary.started_unix);
        println!(
            "{:>4}  {y}-{m:02}-{day:02} {:>5} {:>4} {:>4} {:>5} {:>5} {:>3} {:>4}  {:>6.1} {:>6.1}",
            week,
            d.hosts,
            d.new_hosts,
            d.vanished_hosts,
            d.moved_hosts,
            d.renewed_certs,
            d.upgrades,
            d.downgrades,
            100.0 * point.deficit_rate(Deficit::NoneModeOffered),
            100.0 * point.deficit_rate(Deficit::AnonymousAccess),
        );

        // Cross-check against the world's true state.
        let truth = truth_snapshot(week, &world);
        if let Some(prev) = &truth_prev {
            let truth_delta = diff(prev, &truth);
            if d != truth_delta {
                delta_mismatch_weeks += 1;
            }
            add(&mut detected_total, &d);
            add(&mut truth_total, &truth_delta);
        }
        truth_prev = Some(truth);

        // Deficit trajectories against the deployed configurations.
        let expected_none = world
            .alive()
            .filter(|dep| {
                dep.config
                    .endpoints
                    .iter()
                    .any(|e| e.mode == MessageSecurityMode::None)
            })
            .count();
        let expected_anon = world
            .alive()
            .filter(|dep| dep.config.token_types.contains(&UserTokenType::Anonymous))
            .count();
        if report.count(Deficit::NoneModeOffered) != expected_none
            || report.count(Deficit::AnonymousAccess) != expected_anon
        {
            deficit_mismatch_weeks += 1;
        }
    }

    // Planted ground truth across the whole study.
    let planted = world.history();
    let sum =
        |f: &dyn Fn(&population::WeekChurn) -> usize| -> usize { planted.iter().map(f).sum() };
    println!(
        "\nplanted churn: {} moves, {} departures, {} arrivals, {} renewals, \
         {} upgrades, {} downgrades, {} remediations, {} regressions",
        sum(&|w| w.moves()),
        sum(&|w| w.departures()),
        sum(&|w| w.arrivals()),
        sum(&|w| w.renewals()),
        sum(&|w| w.upgrades()),
        sum(&|w| w.downgrades()),
        sum(&|w| w.remediations()),
        sum(&|w| w.regressions()),
    );
    let certs = campaign.cert_stats();
    println!(
        "certificate interning across the study: {} sightings, {} distinct ({:.0} % hit rate)",
        certs.sightings,
        certs.distinct,
        certs.hit_rate() * 100.0,
    );

    let mut mismatches = 0usize;
    let mut check = |label: &str, found: usize, expected: usize| {
        let mark = if found == expected {
            "ok"
        } else {
            mismatches += 1;
            "MISMATCH"
        };
        println!("  {label:<52} found {found:>4}, ground truth {expected:>4}  [{mark}]");
    };

    println!("\nground-truth cross-checks:");
    check(
        "weeks whose full delta matches the truth mirror",
        (weeks as usize - 1) - delta_mismatch_weeks,
        weeks as usize - 1,
    );
    check(
        "weeks whose deficit counts match deployed configs",
        weeks as usize - deficit_mismatch_weeks,
        weeks as usize,
    );
    check("new hosts", detected_total.new_hosts, truth_total.new_hosts);
    check(
        "vanished hosts",
        detected_total.vanished_hosts,
        truth_total.vanished_hosts,
    );
    check(
        "moved hosts (stable key, new IP)",
        detected_total.moved_hosts,
        truth_total.moved_hosts,
    );
    check(
        "certificate renewals",
        detected_total.renewed_certs,
        truth_total.renewed_certs,
    );
    check(
        "software upgrades detected",
        detected_total.upgrades,
        truth_total.upgrades,
    );
    check(
        "software downgrades detected",
        detected_total.downgrades,
        truth_total.downgrades,
    );
    check(
        "final-week living hosts",
        longitudinal
            .finalize()
            .weeks
            .last()
            .map(|p| p.delta.hosts)
            .unwrap_or(0),
        world.alive_count(),
    );

    if mismatches == 0 {
        println!("\nall longitudinal series agree with the planted ground truth");
    } else {
        println!("\n{mismatches} series diverge from ground truth");
    }

    // Materialization counters go to stderr: stdout must stay
    // byte-identical between the eager and lazy runs.
    if mode == "lazy" {
        let stats = world.stats();
        eprintln!(
            "lazy materialization: {} hosts built, {} keygens, \
             ~{} bytes resident (peak ~{})",
            stats.hosts_materialized,
            stats.keygen_count,
            stats.bytes_resident_estimate,
            stats.peak_bytes_resident_estimate,
        );
    }
}
